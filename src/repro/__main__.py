"""Command-line front end for the scenario registry and sweep fabric.

Usage::

    python -m repro list [--tag TAG]
    python -m repro run <scenario> [--engine ENGINE] [--seed SEED]
                        [--scale {toy,paper}] [--quiet]
                        [--export TRACE.csv] [--stream]
                        [--checkpoint PATH] [--checkpoint-every SECONDS]
                        [--fresh]
    python -m repro sweep '<scenario> axis=values ...' [--engine ENGINE]
                          [--scale {toy,paper}] [--serial] [--workers N]
                          [--timeout SECONDS] [--retries N]
                          [--cache-dir DIR | --no-cache] [--rows N] [--quiet]
    python -m repro sweep --gc [--max-age DAYS] [--dry-run] [--cache-dir DIR]
    python -m repro agent [host:port] [--workers N] [--cache-dir DIR]
                          [--heartbeat SECONDS] [--fault KEY=VALUE ...]
    python -m repro serve-sweep '<scenario> axis=values ...'
                          [--hosts H1:P1,H2:P2 | --local-agents N]
                          [--lease-timeout SECONDS] [sweep options]

``list`` prints every registered scenario with its supported engines;
``run`` executes one through :func:`repro.scenarios.run_scenario` and
prints the resulting table; ``sweep`` expands a grid expression such as
``'fig5/websearch load=0.3:0.9:0.1 scheme=numfabric,dctcp seed=0..9'``
into cells and executes them through the fault-tolerant sweep fabric
(:mod:`repro.sweep`), resuming from the content-addressed cache.

``run`` extras: ``--export trace.csv`` writes the scenario's generated
arrival schedule as a replayable CSV trace (streamed -- works at any
size) instead of executing; ``--stream`` runs through the bounded-memory
streaming result layer (one telemetry summary row instead of a per-flow
dump); ``--checkpoint PATH`` additionally checkpoints run state
atomically every ``--checkpoint-every`` simulated seconds and resumes
from an existing checkpoint (``--fresh`` ignores one).  With a
checkpoint, the first SIGINT stops *after* the next checkpoint write and
prints the resume hint.

``sweep --gc`` garbage-collects the result cache (torn entries, entries
written by a different code fingerprint, entries older than ``--max-age``
days); ``agent`` starts one remote execution agent listening on a TCP
port; ``serve-sweep`` drives a sweep remotely over such agents
(``--local-agents N`` spawns N loopback agents for single-machine use).
See ``docs/SWEEPS.md`` for the failure model.

``run``, ``sweep`` and ``serve-sweep`` stop gracefully on the first
SIGINT/SIGTERM (flushing completed cells and printing a resume hint) and
force-exit on the second; agents drain in-flight cells before exiting.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.results import format_table
from repro.scenarios import get_scenario, list_scenarios, run_scenario


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for entry in list_scenarios():
        if args.tag and args.tag not in entry.tags:
            continue
        rows.append(
            {
                "scenario": entry.name,
                "engines": "+".join(entry.engines),
                "default": entry.default_engine,
                "tags": ",".join(entry.tags),
                "description": entry.description,
            }
        )
    print(format_table(rows))
    print(f"\n{len(rows)} scenario(s); run one with: python -m repro run <scenario>")
    return 0


def _cmd_export(args: argparse.Namespace, spec) -> int:
    from repro.scenarios.materialize import build_fluid_topology, stream_arrivals
    from repro.workloads.trace import write_trace

    try:
        if args.engine is not None or args.seed is not None:
            spec = spec.using(engine=args.engine, seed=args.seed)
        topo = build_fluid_topology(spec)
        count = write_trace(stream_arrivals(spec, topo), args.export)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"exported {count} arrival(s) from {spec.name} to {args.export}")
    print(f"replay with: python -m repro run trace/replay  (trace={args.export})")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.sweep.signals import GracefulInterrupt, SweepInterrupted

    try:
        spec = get_scenario(args.scenario, scale=args.scale)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.export:
        return _cmd_export(args, spec)
    streaming = args.stream or args.checkpoint is not None
    interrupted = False
    try:
        if args.checkpoint is not None:
            from repro.scenarios import run_scenario_streaming

            hint = f"checkpoint saved; rerun the same command to resume from {args.checkpoint}"
            with GracefulInterrupt(on_first="flag", hint=hint) as interrupt:
                result = run_scenario_streaming(
                    spec,
                    engine=args.engine,
                    seed=args.seed,
                    checkpoint_path=args.checkpoint,
                    checkpoint_every=args.checkpoint_every,
                    resume=not args.fresh,
                    should_stop=lambda: interrupt.requested,
                )
            interrupted = bool(result.artifacts.get("interrupted"))
        elif streaming:
            from repro.scenarios import run_scenario_streaming

            with GracefulInterrupt(on_first="raise"):
                result = run_scenario_streaming(spec, engine=args.engine, seed=args.seed)
        else:
            with GracefulInterrupt(on_first="raise"):
                result = run_scenario(spec, engine=args.engine, seed=args.seed)
    except SweepInterrupted:
        print("run interrupted; no result computed.", file=sys.stderr)
        return GracefulInterrupt.EXIT_CODE
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.quiet:
        print(
            f"[{result.experiment_id}] engine={result.artifacts['engine']} "
            f"rows={len(result.rows)}"
        )
    else:
        print(result)
        print(f"\n(engine={result.artifacts['engine']}, rows={len(result.rows)})")
    if interrupted:
        print(
            f"run interrupted; resume from the checkpoint at {args.checkpoint}.",
            file=sys.stderr,
        )
        return GracefulInterrupt.EXIT_CODE
    return 0


def _parse_expression(args: argparse.Namespace):
    from repro.sweep import expand_grid, parse_sweep

    expression = " ".join(args.expression)
    grid = parse_sweep(expression, scale=args.scale, engine=args.engine)
    return grid, expand_grid(grid)


def _finish_sweep(args: argparse.Namespace, grid, report, interrupt, hint: str) -> int:
    from repro.sweep import GracefulInterrupt

    aggregate = report.aggregate(
        experiment_id=f"sweep/{grid.scenario}", title=f"sweep over {grid.scenario}"
    )
    summary = report.summary_lines()
    shown = aggregate.rows if args.rows <= 0 else aggregate.rows[: args.rows]
    if args.quiet:
        print(f"[{aggregate.experiment_id}] {summary[0]}")
        for line in summary[1:]:
            print(line)
    else:
        print(format_table(shown))
        if len(shown) < len(aggregate.rows):
            print(f"... ({len(aggregate.rows) - len(shown)} more rows; use --rows 0 for all)")
        print()
        for line in summary:
            print(line)
    if interrupt.requested:
        if hint:
            print(hint, file=sys.stderr)
        return GracefulInterrupt.EXIT_CODE
    if any(failure.kind != "cancelled" for failure in report.failures):
        return 1
    return 0


def _cmd_sweep_gc(args: argparse.Namespace) -> int:
    from repro.sweep import ResultCache

    if args.no_cache:
        print("error: --gc needs a cache (--no-cache makes no sense here)", file=sys.stderr)
        return 2
    cache = ResultCache(args.cache_dir)
    report = cache.gc(max_age_days=args.max_age, dry_run=args.dry_run)
    verb = "would delete" if args.dry_run else "deleted"
    print(
        f"cache gc [{cache.root}]: scanned={report['scanned']} kept={report['kept']} "
        f"torn={report['torn']} stale_code={report['stale_code']} "
        f"expired={report['expired']} tmp={report['tmp']}; "
        f"{verb} {len(report['deleted'])} file(s)"
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import GracefulInterrupt, ResultCache, RetryPolicy, run_sweep

    if args.gc:
        return _cmd_sweep_gc(args)
    if not args.expression:
        print("error: a sweep expression is required (or use --gc)", file=sys.stderr)
        return 2
    try:
        grid, tasks = _parse_expression(args)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    mode = "serial" if args.serial else "sharded"
    axis_summary = " ".join(f"{key}[{len(values)}]" for key, values in grid.axes)
    hint = (
        f"Completed cells are cached under {cache.root}/; "
        "rerun the same command to resume."
        if cache is not None
        else ""
    )
    progress = (lambda message: None) if args.quiet else (
        lambda message: print(f"  {message}", flush=True)
    )
    with GracefulInterrupt(on_first="flag", hint=hint) as interrupt:
        # Printed (and flushed) only once the signal handler is live, so
        # anything scripting this CLI can treat the header as "safe to
        # interrupt gracefully from here on".
        print(
            f"sweep: {len(tasks)} cells over {grid.scenario} "
            f"({axis_summary or 'no axes'}; mode={mode})",
            flush=True,
        )
        report = run_sweep(
            tasks,
            mode=mode,
            cache=cache,
            workers=args.workers,
            timeout=args.timeout,
            retry=RetryPolicy(max_attempts=args.retries),
            interrupt=interrupt,
            progress=progress,
        )
    return _finish_sweep(args, grid, report, interrupt, hint)


def _cmd_agent(args: argparse.Namespace) -> int:
    from repro.sweep.remote import AgentFaults, SweepAgent
    from repro.sweep.signals import GracefulInterrupt
    from repro.sweep.transport import parse_host

    try:
        host, port = parse_host(args.bind)
        faults = AgentFaults.parse(args.fault or [])
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    progress = (lambda message: None) if args.quiet else (
        lambda message: print(f"  {message}", flush=True)
    )
    agent = SweepAgent(
        host,
        port,
        workers=args.workers,
        cache=args.cache_dir,
        heartbeat_interval=args.heartbeat,
        faults=faults,
        progress=progress,
    )
    # This exact line is the startup handshake: spawn_local_agents (and any
    # orchestration script) parses the bound address out of it.
    print(f"agent listening on {agent.address[0]}:{agent.address[1]}", flush=True)
    with GracefulInterrupt(on_first="flag", hint="Draining in-flight cells.") as interrupt:
        agent.serve_forever(stop=lambda: interrupt.requested)
    return 0


def _cmd_serve_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import GracefulInterrupt, ResultCache, RetryPolicy, run_sweep

    try:
        grid, tasks = _parse_expression(args)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    hosts = [host for part in (args.hosts or []) for host in part.split(",") if host]
    if not hosts and not args.local_agents:
        print("error: serve-sweep needs --hosts or --local-agents", file=sys.stderr)
        return 2
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    hint = (
        f"Completed cells are cached under {cache.root}/; "
        "rerun the same command to resume."
        if cache is not None
        else ""
    )
    progress = (lambda message: None) if args.quiet else (
        lambda message: print(f"  {message}", flush=True)
    )
    procs = []
    try:
        if args.local_agents:
            from repro.sweep.remote import spawn_local_agents

            procs, spawned = spawn_local_agents(
                args.local_agents, workers=args.workers or 1
            )
            hosts = hosts + spawned
            progress(f"spawned {len(spawned)} loopback agent(s): {', '.join(spawned)}")
        with GracefulInterrupt(on_first="flag", hint=hint) as interrupt:
            print(
                f"sweep: {len(tasks)} cells over {grid.scenario} "
                f"(mode=remote; hosts={','.join(hosts)})",
                flush=True,
            )
            report = run_sweep(
                tasks,
                mode="remote",
                cache=cache,
                hosts=hosts,
                timeout=args.timeout,
                retry=RetryPolicy(max_attempts=args.retries),
                lease_timeout=args.lease_timeout,
                interrupt=interrupt,
                progress=progress,
            )
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=5.0)
            except Exception:
                proc.kill()
    return _finish_sweep(args, grid, report, interrupt, hint)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run NUMFabric reproduction scenarios from the registry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="list registered scenarios")
    list_parser.add_argument("--tag", help="only scenarios carrying this tag")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = sub.add_parser("run", help="run one scenario")
    run_parser.add_argument("scenario", help="registered scenario name (see `list`)")
    run_parser.add_argument("--engine", help="execution engine (fluid/flow/packet)")
    run_parser.add_argument("--seed", type=int, help="override the scenario seed")
    run_parser.add_argument(
        "--scale", choices=("toy", "paper"), default="toy", help="problem size (default: toy)"
    )
    run_parser.add_argument(
        "--quiet", action="store_true", help="print a one-line summary instead of the table"
    )
    run_parser.add_argument(
        "--export",
        metavar="TRACE.csv",
        help="write the scenario's arrival schedule as a replayable CSV trace "
        "(streamed; does not execute the scenario)",
    )
    run_parser.add_argument(
        "--stream",
        action="store_true",
        help="run through the bounded-memory streaming result layer "
        "(flow engine; one telemetry summary row instead of per-flow rows)",
    )
    run_parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="stream with periodic atomic checkpoints at PATH; an existing "
        "checkpoint is resumed (implies --stream)",
    )
    run_parser.add_argument(
        "--checkpoint-every",
        type=float,
        default=5e-3,
        metavar="SECONDS",
        help="simulated seconds between checkpoints (default: 0.005)",
    )
    run_parser.add_argument(
        "--fresh",
        action="store_true",
        help="ignore an existing checkpoint and start over",
    )
    run_parser.set_defaults(func=_cmd_run)

    def add_sweep_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--engine", help="engine for every cell (fluid/flow/packet)")
        p.add_argument(
            "--scale", choices=("toy", "paper"), default=None, help="problem size (default: toy)"
        )
        p.add_argument("--workers", type=int, help="worker process count")
        p.add_argument(
            "--timeout", type=float, help="per-cell wall-clock timeout in seconds"
        )
        p.add_argument(
            "--retries",
            type=int,
            default=3,
            help="attempts per cell before quarantine (default: 3)",
        )
        p.add_argument(
            "--cache-dir",
            default=".sweep-cache",
            help="content-addressed result cache directory (default: .sweep-cache)",
        )
        p.add_argument(
            "--no-cache", action="store_true", help="disable the result cache entirely"
        )
        p.add_argument(
            "--rows", type=int, default=40, help="aggregate rows to print (0 = all; default: 40)"
        )
        p.add_argument(
            "--quiet", action="store_true", help="print a one-line summary instead of the table"
        )

    sweep_parser = sub.add_parser(
        "sweep", help="expand a grid expression and run it through the sweep fabric"
    )
    sweep_parser.add_argument(
        "expression",
        nargs="*",
        help="sweep expression: '<scenario> axis=values ...' "
        "(e.g. 'fig5/websearch load=0.3:0.9:0.1 scheme=numfabric,dctcp seed=0..9')",
    )
    sweep_parser.add_argument(
        "--serial",
        action="store_true",
        help="run cells in-process (the bit-identical parity reference)",
    )
    sweep_parser.add_argument(
        "--gc",
        action="store_true",
        help="garbage-collect the cache instead of sweeping (torn entries, "
        "stale code fingerprints, entries older than --max-age)",
    )
    sweep_parser.add_argument(
        "--max-age",
        type=float,
        metavar="DAYS",
        help="with --gc: also drop entries older than this many days",
    )
    sweep_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="with --gc: report what would be deleted without deleting",
    )
    add_sweep_options(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep)

    agent_parser = sub.add_parser(
        "agent", help="run one remote sweep-execution agent (listens on host:port)"
    )
    agent_parser.add_argument(
        "bind",
        nargs="?",
        default="127.0.0.1:0",
        help="address to listen on (default: 127.0.0.1:0 -- an ephemeral port, "
        "printed on startup)",
    )
    agent_parser.add_argument(
        "--workers", type=int, default=1, help="concurrent cells this agent runs (default: 1)"
    )
    agent_parser.add_argument(
        "--cache-dir",
        default=".sweep-cache",
        help="this agent's local result cache (default: .sweep-cache)",
    )
    agent_parser.add_argument(
        "--heartbeat", type=float, default=0.5, help="heartbeat interval in seconds"
    )
    agent_parser.add_argument(
        "--fault",
        action="append",
        metavar="KEY=VALUE",
        help="deterministic fault hook, repeatable (drop_conn_on=0,3 | "
        "partition_on=all | slow_ack_on=1 | slow_ack_seconds=0.5 | "
        "partition_seconds=10); test use only",
    )
    agent_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-event progress lines"
    )
    agent_parser.set_defaults(func=_cmd_agent)

    serve_parser = sub.add_parser(
        "serve-sweep", help="drive a sweep remotely over agent processes"
    )
    serve_parser.add_argument(
        "expression",
        nargs="+",
        help="sweep expression: '<scenario> axis=values ...'",
    )
    serve_parser.add_argument(
        "--hosts",
        action="append",
        metavar="H1:P1,H2:P2",
        help="comma-separated agent addresses, repeatable",
    )
    serve_parser.add_argument(
        "--local-agents",
        type=int,
        metavar="N",
        help="spawn N loopback agents for the duration of the sweep",
    )
    serve_parser.add_argument(
        "--lease-timeout",
        type=float,
        metavar="SECONDS",
        help="wall-clock lease on each dispatched cell before reassignment",
    )
    add_sweep_options(serve_parser)
    serve_parser.set_defaults(func=_cmd_serve_sweep)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
