"""Command-line front end for the scenario registry.

Usage::

    python -m repro list [--tag TAG]
    python -m repro run <scenario> [--engine ENGINE] [--seed SEED]
                        [--scale {toy,paper}] [--quiet]

``list`` prints every registered scenario with its supported engines;
``run`` executes one through :func:`repro.scenarios.run_scenario` and
prints the resulting table.  Examples, benchmarks and the smoke suite
drive the same registry, so anything listed here is exactly what they run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.results import format_table
from repro.scenarios import get_scenario, list_scenarios, run_scenario


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for entry in list_scenarios():
        if args.tag and args.tag not in entry.tags:
            continue
        rows.append(
            {
                "scenario": entry.name,
                "engines": "+".join(entry.engines),
                "default": entry.default_engine,
                "tags": ",".join(entry.tags),
                "description": entry.description,
            }
        )
    print(format_table(rows))
    print(f"\n{len(rows)} scenario(s); run one with: python -m repro run <scenario>")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        spec = get_scenario(args.scenario, scale=args.scale)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    try:
        result = run_scenario(spec, engine=args.engine, seed=args.seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.quiet:
        print(
            f"[{result.experiment_id}] engine={result.artifacts['engine']} "
            f"rows={len(result.rows)}"
        )
    else:
        print(result)
        print(f"\n(engine={result.artifacts['engine']}, rows={len(result.rows)})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run NUMFabric reproduction scenarios from the registry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="list registered scenarios")
    list_parser.add_argument("--tag", help="only scenarios carrying this tag")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = sub.add_parser("run", help="run one scenario")
    run_parser.add_argument("scenario", help="registered scenario name (see `list`)")
    run_parser.add_argument("--engine", help="execution engine (fluid/flow/packet)")
    run_parser.add_argument("--seed", type=int, help="override the scenario seed")
    run_parser.add_argument(
        "--scale", choices=("toy", "paper"), default="toy", help="problem size (default: toy)"
    )
    run_parser.add_argument(
        "--quiet", action="store_true", help="print a one-line summary instead of the table"
    )
    run_parser.set_defaults(func=_cmd_run)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
