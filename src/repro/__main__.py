"""Command-line front end for the scenario registry and sweep fabric.

Usage::

    python -m repro list [--tag TAG]
    python -m repro run <scenario> [--engine ENGINE] [--seed SEED]
                        [--scale {toy,paper}] [--quiet]
                        [--export TRACE.csv] [--stream]
                        [--checkpoint PATH] [--checkpoint-every SECONDS]
                        [--fresh]
    python -m repro sweep '<scenario> axis=values ...' [--engine ENGINE]
                          [--scale {toy,paper}] [--serial] [--workers N]
                          [--timeout SECONDS] [--retries N]
                          [--cache-dir DIR | --no-cache] [--rows N] [--quiet]

``list`` prints every registered scenario with its supported engines;
``run`` executes one through :func:`repro.scenarios.run_scenario` and
prints the resulting table; ``sweep`` expands a grid expression such as
``'fig5/websearch load=0.3:0.9:0.1 scheme=numfabric,dctcp seed=0..9'``
into cells and executes them through the fault-tolerant sweep fabric
(:mod:`repro.sweep`), resuming from the content-addressed cache.

``run`` extras: ``--export trace.csv`` writes the scenario's generated
arrival schedule as a replayable CSV trace (streamed -- works at any
size) instead of executing; ``--stream`` runs through the bounded-memory
streaming result layer (one telemetry summary row instead of a per-flow
dump); ``--checkpoint PATH`` additionally checkpoints run state
atomically every ``--checkpoint-every`` simulated seconds and resumes
from an existing checkpoint (``--fresh`` ignores one).  With a
checkpoint, the first SIGINT stops *after* the next checkpoint write and
prints the resume hint.

Both ``run`` and ``sweep`` stop gracefully on the first SIGINT/SIGTERM
(flushing completed cells and printing a resume hint) and force-exit on
the second.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.results import format_table
from repro.scenarios import get_scenario, list_scenarios, run_scenario


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for entry in list_scenarios():
        if args.tag and args.tag not in entry.tags:
            continue
        rows.append(
            {
                "scenario": entry.name,
                "engines": "+".join(entry.engines),
                "default": entry.default_engine,
                "tags": ",".join(entry.tags),
                "description": entry.description,
            }
        )
    print(format_table(rows))
    print(f"\n{len(rows)} scenario(s); run one with: python -m repro run <scenario>")
    return 0


def _cmd_export(args: argparse.Namespace, spec) -> int:
    from repro.scenarios.materialize import build_fluid_topology, stream_arrivals
    from repro.workloads.trace import write_trace

    try:
        if args.engine is not None or args.seed is not None:
            spec = spec.using(engine=args.engine, seed=args.seed)
        topo = build_fluid_topology(spec)
        count = write_trace(stream_arrivals(spec, topo), args.export)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"exported {count} arrival(s) from {spec.name} to {args.export}")
    print(f"replay with: python -m repro run trace/replay  (trace={args.export})")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.sweep.signals import GracefulInterrupt, SweepInterrupted

    try:
        spec = get_scenario(args.scenario, scale=args.scale)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.export:
        return _cmd_export(args, spec)
    streaming = args.stream or args.checkpoint is not None
    interrupted = False
    try:
        if args.checkpoint is not None:
            from repro.scenarios import run_scenario_streaming

            hint = f"checkpoint saved; rerun the same command to resume from {args.checkpoint}"
            with GracefulInterrupt(on_first="flag", hint=hint) as interrupt:
                result = run_scenario_streaming(
                    spec,
                    engine=args.engine,
                    seed=args.seed,
                    checkpoint_path=args.checkpoint,
                    checkpoint_every=args.checkpoint_every,
                    resume=not args.fresh,
                    should_stop=lambda: interrupt.requested,
                )
            interrupted = bool(result.artifacts.get("interrupted"))
        elif streaming:
            from repro.scenarios import run_scenario_streaming

            with GracefulInterrupt(on_first="raise"):
                result = run_scenario_streaming(spec, engine=args.engine, seed=args.seed)
        else:
            with GracefulInterrupt(on_first="raise"):
                result = run_scenario(spec, engine=args.engine, seed=args.seed)
    except SweepInterrupted:
        print("run interrupted; no result computed.", file=sys.stderr)
        return GracefulInterrupt.EXIT_CODE
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.quiet:
        print(
            f"[{result.experiment_id}] engine={result.artifacts['engine']} "
            f"rows={len(result.rows)}"
        )
    else:
        print(result)
        print(f"\n(engine={result.artifacts['engine']}, rows={len(result.rows)})")
    if interrupted:
        print(
            f"run interrupted; resume from the checkpoint at {args.checkpoint}.",
            file=sys.stderr,
        )
        return GracefulInterrupt.EXIT_CODE
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import (
        GracefulInterrupt,
        ResultCache,
        RetryPolicy,
        expand_grid,
        parse_sweep,
        run_sweep,
    )

    expression = " ".join(args.expression)
    try:
        grid = parse_sweep(expression, scale=args.scale, engine=args.engine)
        tasks = expand_grid(grid)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    mode = "serial" if args.serial else "sharded"
    axis_summary = " ".join(f"{key}[{len(values)}]" for key, values in grid.axes)
    hint = (
        f"Completed cells are cached under {cache.root}/; "
        "rerun the same command to resume."
        if cache is not None
        else ""
    )
    progress = (lambda message: None) if args.quiet else (
        lambda message: print(f"  {message}", flush=True)
    )
    with GracefulInterrupt(on_first="flag", hint=hint) as interrupt:
        # Printed (and flushed) only once the signal handler is live, so
        # anything scripting this CLI can treat the header as "safe to
        # interrupt gracefully from here on".
        print(
            f"sweep: {len(tasks)} cells over {grid.scenario} "
            f"({axis_summary or 'no axes'}; mode={mode})",
            flush=True,
        )
        report = run_sweep(
            tasks,
            mode=mode,
            cache=cache,
            workers=args.workers,
            timeout=args.timeout,
            retry=RetryPolicy(max_attempts=args.retries),
            interrupt=interrupt,
            progress=progress,
        )
    aggregate = report.aggregate(
        experiment_id=f"sweep/{grid.scenario}", title=f"sweep over {grid.scenario}"
    )
    shown = aggregate.rows if args.rows <= 0 else aggregate.rows[: args.rows]
    if args.quiet:
        print(f"[{aggregate.experiment_id}] {_stats_line(report.stats)}")
    else:
        print(format_table(shown))
        if len(shown) < len(aggregate.rows):
            print(f"... ({len(aggregate.rows) - len(shown)} more rows; use --rows 0 for all)")
        print(f"\n{_stats_line(report.stats)}")
    if interrupt.requested:
        if hint:
            print(hint, file=sys.stderr)
        return GracefulInterrupt.EXIT_CODE
    if any(failure.kind != "cancelled" for failure in report.failures):
        return 1
    return 0


def _stats_line(stats: dict) -> str:
    return ", ".join(f"{key}={value}" for key, value in sorted(stats.items()))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run NUMFabric reproduction scenarios from the registry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="list registered scenarios")
    list_parser.add_argument("--tag", help="only scenarios carrying this tag")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = sub.add_parser("run", help="run one scenario")
    run_parser.add_argument("scenario", help="registered scenario name (see `list`)")
    run_parser.add_argument("--engine", help="execution engine (fluid/flow/packet)")
    run_parser.add_argument("--seed", type=int, help="override the scenario seed")
    run_parser.add_argument(
        "--scale", choices=("toy", "paper"), default="toy", help="problem size (default: toy)"
    )
    run_parser.add_argument(
        "--quiet", action="store_true", help="print a one-line summary instead of the table"
    )
    run_parser.add_argument(
        "--export",
        metavar="TRACE.csv",
        help="write the scenario's arrival schedule as a replayable CSV trace "
        "(streamed; does not execute the scenario)",
    )
    run_parser.add_argument(
        "--stream",
        action="store_true",
        help="run through the bounded-memory streaming result layer "
        "(flow engine; one telemetry summary row instead of per-flow rows)",
    )
    run_parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="stream with periodic atomic checkpoints at PATH; an existing "
        "checkpoint is resumed (implies --stream)",
    )
    run_parser.add_argument(
        "--checkpoint-every",
        type=float,
        default=5e-3,
        metavar="SECONDS",
        help="simulated seconds between checkpoints (default: 0.005)",
    )
    run_parser.add_argument(
        "--fresh",
        action="store_true",
        help="ignore an existing checkpoint and start over",
    )
    run_parser.set_defaults(func=_cmd_run)

    sweep_parser = sub.add_parser(
        "sweep", help="expand a grid expression and run it through the sweep fabric"
    )
    sweep_parser.add_argument(
        "expression",
        nargs="+",
        help="sweep expression: '<scenario> axis=values ...' "
        "(e.g. 'fig5/websearch load=0.3:0.9:0.1 scheme=numfabric,dctcp seed=0..9')",
    )
    sweep_parser.add_argument("--engine", help="engine for every cell (fluid/flow/packet)")
    sweep_parser.add_argument(
        "--scale", choices=("toy", "paper"), default=None, help="problem size (default: toy)"
    )
    sweep_parser.add_argument(
        "--serial",
        action="store_true",
        help="run cells in-process (the bit-identical parity reference)",
    )
    sweep_parser.add_argument("--workers", type=int, help="worker process count")
    sweep_parser.add_argument(
        "--timeout", type=float, help="per-cell wall-clock timeout in seconds"
    )
    sweep_parser.add_argument(
        "--retries", type=int, default=3, help="attempts per cell before quarantine (default: 3)"
    )
    sweep_parser.add_argument(
        "--cache-dir",
        default=".sweep-cache",
        help="content-addressed result cache directory (default: .sweep-cache)",
    )
    sweep_parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache entirely"
    )
    sweep_parser.add_argument(
        "--rows", type=int, default=40, help="aggregate rows to print (0 = all; default: 40)"
    )
    sweep_parser.add_argument(
        "--quiet", action="store_true", help="print a one-line summary instead of the table"
    )
    sweep_parser.set_defaults(func=_cmd_sweep)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
