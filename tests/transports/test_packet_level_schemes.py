"""Integration-style tests of the packet-level transports on small topologies."""

import pytest

from repro.core.config import NumFabricParameters
from repro.core.utility import LogUtility
from repro.sim.flow import FlowDescriptor
from repro.sim.topology import dumbbell, leaf_spine_network, single_link_network
from repro.core.config import SimulationParameters
from repro.transports import (
    DctcpScheme,
    DgdScheme,
    NumFabricScheme,
    PfabricScheme,
    RcpStarScheme,
)

LINK_RATE = 1e9
# The scaled-down 1 Gbps topology has a serialization-dominated RTT; Swift's
# window sizing must use it (see Sec. 4.1's requirement that W > BDP).
NUMFABRIC_PARAMS = NumFabricParameters(baseline_rtt=60e-6, delay_slack=20e-6)


def add_long_lived_flows(network, count, weights=None):
    for i in range(count):
        weight = weights[i] if weights else 1.0
        network.add_flow(
            FlowDescriptor(
                flow_id=i,
                source=("sender", i),
                destination=("receiver", i),
                utility=LogUtility(weight=weight),
            )
        )


def measured_rates(network, count, start, end):
    return [network.rate_monitors[i].average_rate(start, end) for i in range(count)]


class TestNumFabricPacketLevel:
    def test_equal_weights_share_equally(self):
        scheme = NumFabricScheme(params=NUMFABRIC_PARAMS)
        network = single_link_network(scheme, num_flows=3, link_rate=LINK_RATE)
        add_long_lived_flows(network, 3)
        network.run(0.02)
        rates = measured_rates(network, 3, 0.012, 0.02)
        for rate in rates:
            assert rate == pytest.approx(LINK_RATE / 3, rel=0.12)

    def test_weighted_allocation(self):
        scheme = NumFabricScheme(params=NUMFABRIC_PARAMS)
        network = single_link_network(scheme, num_flows=3, link_rate=LINK_RATE)
        add_long_lived_flows(network, 3, weights=[1.0, 2.0, 4.0])
        network.run(0.03)
        rates = measured_rates(network, 3, 0.02, 0.03)
        total = sum(rates)
        assert total == pytest.approx(LINK_RATE, rel=0.1)
        assert rates[1] / rates[0] == pytest.approx(2.0, rel=0.25)
        assert rates[2] / rates[0] == pytest.approx(4.0, rel=0.25)

    def test_flow_arrival_reconverges(self):
        scheme = NumFabricScheme(params=NUMFABRIC_PARAMS)
        network = single_link_network(scheme, num_flows=2, link_rate=LINK_RATE)
        network.add_flow(
            FlowDescriptor(flow_id=0, source=("sender", 0), destination=("receiver", 0))
        )
        network.add_flow(
            FlowDescriptor(
                flow_id=1, source=("sender", 1), destination=("receiver", 1), start_time=0.015
            )
        )
        network.run(0.035)
        early = network.rate_monitors[0].average_rate(0.008, 0.014)
        late = network.rate_monitors[0].average_rate(0.028, 0.035)
        assert early == pytest.approx(LINK_RATE, rel=0.15)
        assert late == pytest.approx(LINK_RATE / 2, rel=0.2)

    def test_finite_flow_completes(self):
        scheme = NumFabricScheme(params=NUMFABRIC_PARAMS)
        network = single_link_network(scheme, num_flows=1, link_rate=LINK_RATE)
        network.add_flow(
            FlowDescriptor(
                flow_id=0, source=("sender", 0), destination=("receiver", 0), size_bytes=75_000
            )
        )
        network.run(0.05)
        assert network.fct_tracker.count == 1
        completion = network.fct_tracker.completions[0]
        assert completion.size_bytes == 75_000
        assert completion.completion_time > 0

    def test_leaf_spine_cross_rack_flow(self):
        params = SimulationParameters(
            num_servers=8, num_leaves=2, num_spines=2,
            edge_link_rate=LINK_RATE, core_link_rate=4 * LINK_RATE, baseline_rtt=60e-6,
        )
        scheme = NumFabricScheme(params=NUMFABRIC_PARAMS)
        network = leaf_spine_network(scheme, params=params)
        network.add_flow(
            FlowDescriptor(flow_id=0, source=("server", 0), destination=("server", 7),
                           size_bytes=50_000)
        )
        network.run(0.05)
        assert network.fct_tracker.count == 1


class TestBaselinesPacketLevel:
    @pytest.mark.parametrize("scheme_cls", [DgdScheme, RcpStarScheme, DctcpScheme])
    def test_fair_share_on_single_bottleneck(self, scheme_cls):
        scheme = scheme_cls()
        network = single_link_network(scheme, num_flows=2, link_rate=LINK_RATE)
        add_long_lived_flows(network, 2)
        network.run(0.04)
        rates = measured_rates(network, 2, 0.025, 0.04)
        total = sum(rates)
        # All baselines eventually use most of the link and split it roughly
        # evenly (they are slower and noisier than NUMFabric).
        assert total == pytest.approx(LINK_RATE, rel=0.35)
        assert rates[0] == pytest.approx(rates[1], rel=0.5)

    def test_pfabric_srpt_ordering(self):
        """pFabric finishes short flows before long ones sharing a bottleneck."""
        scheme = PfabricScheme()
        network = dumbbell(scheme, num_pairs=1, bottleneck_rate=LINK_RATE,
                           access_rate=LINK_RATE)
        sizes = {0: 150_000, 1: 15_000}
        for flow_id, size in sizes.items():
            network.add_flow(
                FlowDescriptor(
                    flow_id=flow_id, source=("sender", 0), destination=("receiver", 0),
                    size_bytes=size,
                )
            )
        network.run(0.1)
        completions = {c.flow_id: c for c in network.fct_tracker.completions}
        assert set(completions) == {0, 1}
        assert completions[1].finish_time < completions[0].finish_time

    def test_dctcp_keeps_queues_bounded(self):
        scheme = DctcpScheme()
        network = single_link_network(scheme, num_flows=2, link_rate=LINK_RATE)
        add_long_lived_flows(network, 2)
        network.run(0.03)
        bottleneck = [p for p in network.ports if p.name == "left->right"][0]
        # The marking threshold is 65 packets; DCTCP should keep the standing
        # queue in that neighbourhood, far below the 1 MB buffer.
        assert bottleneck.queue_bytes < 300_000
