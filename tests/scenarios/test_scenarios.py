"""Tests for the declarative scenario subsystem (spec, registry, runner)."""

import pytest

from repro.scenarios import (
    SCENARIOS,
    ScenarioSpec,
    fanout_workload,
    get_scenario,
    leaf_spine_topology,
    list_scenarios,
    poisson_workload,
    run_scenario,
    scheme,
    single_link_topology,
    trace_workload,
)
from repro.scenarios.materialize import build_fluid_topology, materialize_arrivals
from repro.workloads.hotspot import HotspotTrafficGenerator
from repro.workloads.incast import IncastTrafficGenerator
from repro.workloads.trace import arrivals_from_trace, trace_from_arrivals
from repro.workloads.distributions import web_search_distribution


class TestSpec:
    def test_engine_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="x",
                topology=single_link_topology(),
                workload=fanout_workload(2),
                engine="warp-drive",
            )

    def test_using_rejects_unsupported_engine(self):
        spec = ScenarioSpec(
            name="x",
            topology=single_link_topology(),
            workload=fanout_workload(2),
            engine="fluid",
        )
        with pytest.raises(ValueError):
            spec.using(engine="packet")

    def test_using_merges_sizing_and_keeps_original(self):
        spec = ScenarioSpec(
            name="x",
            topology=single_link_topology(),
            workload=fanout_workload(2),
            engine="fluid",
            sizing={"iterations": 10, "measure": "rates"},
        )
        derived = spec.using(seed=9, iterations=33)
        assert derived.seed == 9 and derived.size("iterations") == 33
        assert derived.size("measure") == "rates"
        assert spec.size("iterations") == 10 and spec.seed is None

    def test_string_kind_coerced(self):
        spec = ScenarioSpec(name="x", topology="single_link", workload="fanout")
        assert spec.topology.kind == "single_link"
        assert spec.workload.kind == "fanout"


class TestRegistry:
    def test_at_least_twelve_scenarios_with_new_families(self):
        names = set(SCENARIOS)
        assert len(names) >= 12
        for required in (
            "fattree/websearch",
            "incast/leaf-spine",
            "hotspot/leaf-spine",
            "trace/replay",
        ):
            assert required in names

    def test_every_figure_family_registered(self):
        prefixes = {name.split("/")[0] for name in SCENARIOS}
        for fig in ("fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"):
            assert fig in prefixes

    def test_get_scenario_unknown_name(self):
        with pytest.raises(KeyError):
            get_scenario("nope/never")

    def test_get_scenario_scales(self):
        toy = get_scenario("fig5/websearch", scale="toy")
        paper = get_scenario("fig5/websearch", scale="paper")
        assert toy.workload.get("num_flows") < paper.workload.get("num_flows")
        with pytest.raises(ValueError):
            get_scenario("fig5/websearch", scale="galactic")

    def test_get_scenario_returns_the_registered_name(self):
        for name in ("fig4/semidynamic-convergence", "fig5/websearch", "fig8/permutation-pooling"):
            assert get_scenario(name).name == name

    def test_listing_is_sorted_and_described(self):
        entries = list_scenarios()
        assert [e.name for e in entries] == sorted(e.name for e in entries)
        assert all(e.description for e in entries)
        assert all(e.default_engine in e.engines for e in entries)


class TestSeedDeterminism:
    """ScenarioSpec.seed must reach every stochastic component end-to-end."""

    def _rows(self, name, seed, engine=None):
        result = run_scenario(get_scenario(name), seed=seed, engine=engine)
        return result.rows

    @pytest.mark.parametrize(
        "name,engine",
        [
            ("fig5/websearch", None),  # PoissonTrafficGenerator (flow engine)
            ("fig8/permutation-pooling", None),  # PermutationTraffic (fluid engine)
            ("fig4/semidynamic-convergence", None),  # SemiDynamicScenario
            ("hotspot/leaf-spine", None),  # HotspotTrafficGenerator
            ("incast/leaf-spine", None),  # IncastTrafficGenerator
        ],
    )
    def test_same_seed_bit_identical(self, name, engine):
        first = self._rows(name, seed=123, engine=engine)
        second = self._rows(name, seed=123, engine=engine)
        assert first == second  # exact equality, including every float bit

    def test_different_seed_changes_workload(self):
        first = self._rows("fig5/websearch", seed=1)
        second = self._rows("fig5/websearch", seed=2)
        assert first != second

    def test_seed_reaches_arrival_generators(self):
        spec = get_scenario("fig5/websearch").using(seed=77)
        topo = build_fluid_topology(spec)
        arrivals_a = materialize_arrivals(spec, topo)
        arrivals_b = materialize_arrivals(spec, build_fluid_topology(spec))
        assert arrivals_a == arrivals_b
        spec_c = spec.using(seed=78)
        arrivals_c = materialize_arrivals(spec_c, build_fluid_topology(spec_c))
        assert arrivals_a != arrivals_c


class TestRunnerFluid:
    def test_equal_split_on_single_link(self):
        spec = ScenarioSpec(
            name="t/equal-split",
            topology=single_link_topology(capacity=8e9),
            workload=fanout_workload(4),
            scheme=scheme("NUMFabric"),
            engine="fluid",
            sizing={"iterations": 80},
        )
        rates = run_scenario(spec).artifacts["final_rates"]
        for rate in rates.values():
            assert rate == pytest.approx(2e9, rel=0.05)

    def test_oracle_scheme_solves_directly(self):
        spec = ScenarioSpec(
            name="t/oracle",
            topology=single_link_topology(capacity=8e9),
            workload=fanout_workload(4),
            scheme=scheme("Oracle"),
            engine="fluid",
        )
        result = run_scenario(spec)
        assert len(result.rows) == 4
        for row in result.rows:
            assert row["rate_bps"] == pytest.approx(2e9, rel=1e-6)

    def test_unknown_scheme_rejected(self):
        spec = ScenarioSpec(
            name="t/unknown",
            topology=single_link_topology(),
            workload=fanout_workload(2),
            scheme=scheme("TCP-Reno"),
            engine="fluid",
        )
        with pytest.raises(ValueError):
            run_scenario(spec)

    def test_capacity_schedule_applies(self):
        spec = ScenarioSpec(
            name="t/capacity",
            topology=single_link_topology(capacity=4e9),
            workload=fanout_workload(2),
            engine="fluid",
            sizing={
                "iterations": 160,
                "capacity_schedule": ((80, "link", 8e9),),
                "record_timeseries": True,
            },
        )
        run = run_scenario(spec)
        series = run.artifacts["timeseries"]
        early, late = series[70], series[-1]
        assert sum(early.values()) == pytest.approx(4e9, rel=0.05)
        assert sum(late.values()) == pytest.approx(8e9, rel=0.05)

    def test_star_spread_works_on_any_link_bundle(self):
        from repro.scenarios import parking_lot_topology, star_spread_workload

        spec = ScenarioSpec(
            name="t/parking-star",
            topology=parking_lot_topology(n_hops=3, capacity=9e9),
            workload=star_spread_workload(6),
            engine="fluid",
            sizing={"iterations": 60},
        )
        rates = run_scenario(spec).artifacts["final_rates"]
        assert len(rates) == 6 and all(rate > 0 for rate in rates.values())

    def test_fanout_on_multi_link_topology_gives_clear_error(self):
        from repro.scenarios import parking_lot_topology

        spec = ScenarioSpec(
            name="t/parking-fanout",
            topology=parking_lot_topology(n_hops=3),
            workload=fanout_workload(2),
            engine="fluid",
        )
        with pytest.raises(ValueError, match="fanout workload"):
            run_scenario(spec)

    def test_incast_with_size_distribution_and_explicit_servers(self):
        from repro.scenarios import incast_workload

        spec = ScenarioSpec(
            name="t/incast-sized",
            topology=single_link_topology(capacity=10e9),
            workload=incast_workload(
                num_senders=4, waves=2, size_distribution="websearch", num_servers=8
            ),
            engine="flow",
            seed=2,
        )
        run = run_scenario(spec)
        sizes = {c.size_bytes for c in run.artifacts["completions"]}
        assert len(run.artifacts["completions"]) == 8
        assert len(sizes) > 1  # drawn from the distribution, not a constant

    def test_departure_batches_sharing_a_step_all_apply(self):
        spec = ScenarioSpec(
            name="t/departures",
            topology=single_link_topology(capacity=6e9),
            workload=fanout_workload(6, departures=[(10, (0, 1)), (10, (2,)), (20, (3,))]),
            engine="fluid",
            sizing={"iterations": 60},
        )
        rates = run_scenario(spec).artifacts["final_rates"]
        # Flows 0, 1, 2 (two batches at step 10) and 3 (step 20) all left.
        assert set(rates) == {4, 5}
        for rate in rates.values():
            assert rate == pytest.approx(3e9, rel=0.05)

    def test_semidynamic_oracle_cache_shares_solves(self):
        spec = get_scenario("fig4/semidynamic-convergence")
        cache = {}
        with_cache = run_scenario(spec, seed=9, oracle_cache=cache)
        assert cache  # one entry per distinct active set
        without = run_scenario(spec, seed=9)
        assert with_cache.rows == without.rows
        # A second scheme reusing the cache gets identical references.
        reused = run_scenario(spec, seed=9, oracle_cache=cache)
        assert reused.rows == with_cache.rows

    def test_fluid_engine_on_arrivals_builds_static_population(self):
        spec = get_scenario("incast/leaf-spine").using(engine="fluid", seed=3)
        run = run_scenario(spec)
        # Every arrival became one persistent flow.
        assert len(run.artifacts["final_rates"]) == len(run.rows)
        # N-to-1: the receiver's host-down link is the bottleneck, so the
        # fan-in flows split it roughly equally.
        senders = spec.workload.get("num_senders")
        waves = spec.workload.get("waves")
        assert len(run.rows) == senders * waves


class TestRunnerFlowAndPacket:
    def test_flow_engine_completions_match_rows(self):
        result = run_scenario(get_scenario("unit/dumbbell-websearch"), seed=5)
        completions = result.artifacts["completions"]
        assert len(result.rows) == len(completions) == len(result.artifacts["arrivals"])
        for row in result.rows:
            assert row["fct"] > 0

    def test_packet_engine_runs_same_spec(self):
        result = run_scenario(
            get_scenario("unit/dumbbell-websearch"), engine="packet", seed=5
        )
        assert result.artifacts["engine"] == "packet"
        assert len(result.artifacts["completions"]) > 0

    def test_packet_single_link_sizes_pairs_from_endpoints(self):
        spec = ScenarioSpec(
            name="t/packet-single-link",
            topology=single_link_topology(capacity=1e9),
            workload=poisson_workload(
                "websearch", num_flows=20, num_servers=4, size_cap_bytes=20_000
            ),
            engine="packet",
            seed=8,
            sizing={"drain": 0.05},
        )
        run = run_scenario(spec)
        # One dumbbell pair per endpoint, not per arrival.
        assert len(run.artifacts["network"].hosts) == 2 * 4
        assert len(run.artifacts["completions"]) == 20

    def test_flow_engine_rejects_static_workload(self):
        spec = ScenarioSpec(
            name="t/static-flow",
            topology=single_link_topology(),
            workload=fanout_workload(2),
            engine="flow",
        )
        with pytest.raises(ValueError):
            run_scenario(spec)


class TestNewWorkloads:
    def test_incast_waves_target_one_receiver(self):
        generator = IncastTrafficGenerator(
            num_servers=16, receiver=3, num_senders=5, wave_interval=1e-3, seed=1
        )
        arrivals = generator.generate(waves=4)
        assert len(arrivals) == 20
        assert all(a.destination == 3 for a in arrivals)
        assert all(a.source != 3 for a in arrivals)
        wave_times = sorted({a.time for a in arrivals})
        assert wave_times == [0.0, 1e-3, 2e-3, 3e-3]

    def test_incast_validation(self):
        with pytest.raises(ValueError):
            IncastTrafficGenerator(num_servers=4, num_senders=4)
        with pytest.raises(ValueError):
            IncastTrafficGenerator(num_servers=4, receiver=9)

    def test_hotspot_skews_destinations(self):
        generator = HotspotTrafficGenerator(
            num_servers=32,
            size_distribution=web_search_distribution(),
            load=0.5,
            hot_fraction=0.8,
            num_hot=2,
            seed=11,
        )
        arrivals = generator.generate(max_flows=400)
        hot = sum(1 for a in arrivals if a.destination in (0, 1))
        assert hot > 200  # ~0.8 * 400 plus uniform spillover
        assert all(a.source != a.destination for a in arrivals)
        assert generator.hot_load_share(arrivals) > 0.5

    def test_hotspot_validation(self):
        with pytest.raises(ValueError):
            HotspotTrafficGenerator(
                num_servers=8,
                size_distribution=web_search_distribution(),
                load=0.5,
                hot_fraction=1.5,
            )

    def test_trace_roundtrip(self):
        generator = IncastTrafficGenerator(num_servers=8, num_senders=3, seed=2)
        arrivals = generator.generate(waves=2)
        text = trace_from_arrivals(arrivals)
        replayed = arrivals_from_trace(text)
        assert replayed == arrivals

    def test_trace_jsonl_and_csv_files(self, tmp_path):
        csv_file = tmp_path / "trace.csv"
        csv_file.write_text(
            "time,source,destination,size_bytes\n# comment\n0.5,1,2,1000\n0.25,2,3,2000\n"
        )
        from_csv = arrivals_from_trace(str(csv_file))
        assert [a.flow_id for a in from_csv] == [1, 0]  # sorted by time
        jsonl_file = tmp_path / "trace.jsonl"
        jsonl_file.write_text(
            '{"time": 0.1, "source": 0, "destination": 1, "size_bytes": 500, "flow_id": 7}\n'
        )
        from_jsonl = arrivals_from_trace(str(jsonl_file))
        assert from_jsonl[0].flow_id == 7 and from_jsonl[0].size_bytes == 500

    def test_trace_rejects_bad_records(self):
        with pytest.raises(ValueError):
            arrivals_from_trace("time,source,destination\n0.1,0,1\n")
        with pytest.raises(ValueError):
            arrivals_from_trace(
                "time,source,destination,size_bytes\n0.1,2,2,100\n"
            )

    def test_trace_scenario_through_both_engines(self):
        trace = "time,source,destination,size_bytes\n0,0,1,50000\n0,2,3,50000\n"
        spec = ScenarioSpec(
            name="t/trace",
            topology=leaf_spine_topology(num_servers=8, num_leaves=2, num_spines=2),
            workload=trace_workload(trace),
            engine="flow",
            engines=("flow", "fluid"),
        )
        flow_run = run_scenario(spec)
        assert len(flow_run.artifacts["completions"]) == 2
        fluid_run = run_scenario(spec, engine="fluid")
        assert len(fluid_run.artifacts["final_rates"]) == 2


class TestObjectives:
    def test_fct_objective_prioritizes_short_flows(self):
        trace = (
            "time,source,destination,size_bytes\n"
            "0,1,0,200000\n"
            "0,2,0,10000000\n"
        )
        spec = ScenarioSpec(
            name="t/fct",
            topology=leaf_spine_topology(num_servers=8, num_leaves=2, num_spines=2),
            workload=trace_workload(trace),
            scheme=scheme("Oracle"),
            engine="flow",
        )
        from repro.scenarios import alpha_fair_objective, fct_objective

        fct_run = run_scenario(spec, objective=fct_objective())
        fair_run = run_scenario(spec, objective=alpha_fair_objective(1.0))
        fct_short = {c.flow_id: c for c in fct_run.artifacts["completions"]}[0]
        fair_short = {c.flow_id: c for c in fair_run.artifacts["completions"]}[0]
        # Both flows fan into server 0's access link; the SRPT-like utility
        # must finish the short flow well before fair sharing would.
        assert fct_short.fct < 0.75 * fair_short.fct


class TestPoissonWorkloadSpec:
    def test_size_cap_applies(self):
        spec = ScenarioSpec(
            name="t/cap",
            topology=leaf_spine_topology(num_servers=8, num_leaves=2, num_spines=2),
            workload=poisson_workload("websearch", num_flows=50, size_cap_bytes=10_000),
            engine="flow",
            seed=4,
        )
        arrivals = materialize_arrivals(spec, build_fluid_topology(spec))
        assert max(a.size_bytes for a in arrivals) <= 10_000
