"""Fault smoke suite: every fault scenario, every declared engine, twice.

Each registered ``fault``-tagged scenario runs at toy scale on every engine
it declares, and then runs *again* to pin bit-identical determinism under a
fixed seed -- fault timelines, stochastic capacity processes and
control-plane drops are all seeded.  Fluid runs additionally gate on the
expected physics: a finite re-convergence time against the post-fault
Oracle and an everywhere-finite, non-negative rate timeseries.  Marked
``fault_smoke`` (run with ``pytest -m fault_smoke``; deselect with
``-m "not fault_smoke"``).
"""

import math

import pytest

from repro.scenarios import get_scenario, list_scenarios, run_scenario

FAULT_CASES = [
    (entry.name, engine)
    for entry in list_scenarios()
    if "fault" in entry.tags
    for engine in entry.engines
]


def run_twice(name, engine):
    results = []
    for _ in range(2):
        spec = get_scenario(name, scale="toy")
        results.append(run_scenario(spec, engine=engine, seed=21))
    return results


@pytest.mark.fault_smoke
def test_fault_scenarios_are_registered():
    assert FAULT_CASES, "no fault scenarios registered"
    names = {name for name, _ in FAULT_CASES}
    assert len(names) >= 5


@pytest.mark.fault_smoke
@pytest.mark.parametrize(
    "name,engine", FAULT_CASES, ids=[f"{n}@{e}" for n, e in FAULT_CASES]
)
def test_fault_scenario_toy_scale(name, engine):
    first, rerun = run_twice(name, engine)

    assert first.artifacts["engine"] == engine
    assert first.rows, f"{name} on {engine} produced no rows"
    # Bit-identical rerun under the fixed seed: fault timelines, stochastic
    # capacity draws and control-plane drops are all deterministic.
    assert first.rows == rerun.rows

    spec = first.artifacts["spec"]
    plan = spec.faults
    assert plan is not None, "fault scenarios must carry a FaultPlan"

    if engine == "fluid":
        _assert_fluid_resilience(first, rerun, plan)
    else:
        _assert_end_state_restored(first)


def _assert_fluid_resilience(result, rerun, plan):
    timeseries = result.artifacts["timeseries"]
    assert timeseries, "fault runs must record the rate timeseries"
    for rates in timeseries:
        for flow_id, rate in rates.items():
            assert math.isfinite(rate), f"{flow_id} rate is {rate}"
            assert rate >= 0.0

    report = result.artifacts["resilience"]
    assert report == rerun.artifacts["resilience"]
    assert math.isfinite(report["reconvergence_iterations"]), (
        "scheme failed to re-converge to the post-fault Oracle"
    )
    assert report["throughput_floor_fraction"] >= 0.0
    assert report["pre_fault_throughput_bps"] > 0.0

    # The post-fault Oracle itself is finite (graceful degradation holds
    # even when the plan drives links to zero mid-run).
    for rate in result.artifacts["post_fault_oracle"].values():
        assert math.isfinite(rate)
        assert rate >= 0.0


def _assert_end_state_restored(result):
    """Every registered fault plan ends with its links restored."""
    network = result.artifacts["network"]
    if hasattr(network, "capacities"):  # flow engine: FluidNetwork
        for link, capacity in network.capacities.items():
            assert capacity > 0.0, f"fluid link {link} left failed at run end"
    else:  # packet engine: repro.sim Network
        for port in network.ports:
            assert port.rate_bps > 0.0, f"port {port.name} left failed at run end"
