"""Scenario smoke suite: every registered scenario, every supported engine.

Each case builds a registered scenario at toy scale and executes it on one
of the engines it declares -- the regression net for "adding a scenario
means writing a spec": if a spec/engine combination breaks, exactly one
case fails.  Beyond shape checks, every case gates on engine physics
(finite non-negative rates, per-link load within capacity, byte-conserving
completions) and on a bit-identical rerun under the fixed seed.  Marked
``scenario_smoke`` so CI can run the sweep explicitly
(``pytest -m scenario_smoke``); deselect with ``-m "not scenario_smoke"``.
"""

import math

import pytest

from repro.scenarios import get_scenario, list_scenarios, run_scenario

CASES = [
    (entry.name, engine) for entry in list_scenarios() for engine in entry.engines
]

#: Allowed transient overshoot of link capacity in *final* fluid rates: the
#: control loops converge asymptotically, so a toy-scale run can stop while
#: a link still carries a few percent more than capacity.
FLUID_CAPACITY_MARGIN = 1.15


@pytest.mark.scenario_smoke
@pytest.mark.parametrize("name,engine", CASES, ids=[f"{n}@{e}" for n, e in CASES])
def test_scenario_toy_scale(name, engine):
    spec = get_scenario(name, scale="toy")
    result = run_scenario(spec, engine=engine, seed=20)
    assert result.artifacts["engine"] == engine
    assert result.rows, f"{name} on {engine} produced no rows"
    artifacts = result.artifacts
    if engine == "fluid":
        assert (
            "final_rates" in artifacts
            or "convergence_seconds" in artifacts
            or "convergence" in artifacts
        )
        _assert_fluid_physics(artifacts)
    else:
        assert "completions" in artifacts or "network" in artifacts
        _assert_completion_physics(artifacts)
        if engine == "packet":
            _assert_packet_physics(artifacts)

    # Determinism: the seed pins workload draws, ECMP tie-breaks and fault
    # timelines, so a rerun of the same spec is bit-identical.
    rerun = run_scenario(get_scenario(name, scale="toy"), engine=engine, seed=20)
    assert result.rows == rerun.rows, f"{name} on {engine} is not deterministic"


def _assert_fluid_physics(artifacts):
    """Final rates are finite, non-negative and (nearly) feasible."""
    final_rates = artifacts.get("final_rates")
    network = artifacts.get("network")
    if not final_rates or network is None:
        return  # convergence/semidynamic measurements report iterations only
    for flow_id, rate in final_rates.items():
        assert math.isfinite(rate), f"{flow_id} rate is {rate}"
        assert rate >= 0.0
    load = network.link_load(final_rates)
    for link, capacity in network.capacities.items():
        assert load[link] <= capacity * FLUID_CAPACITY_MARGIN + 1.0, (
            f"link {link} carries {load[link]:.3e} over capacity {capacity:.3e}"
        )


def _assert_completion_physics(artifacts):
    """Completions conserve bytes and their times are ordered."""
    completions = artifacts.get("completions")
    if completions is None:
        return
    arrivals = artifacts.get("arrivals") or ()
    sizes = {arrival.flow_id: arrival.size_bytes for arrival in arrivals}
    for flow in completions:
        assert flow.finish_time > flow.start_time >= 0.0
        rate = 8.0 * flow.size_bytes / (flow.finish_time - flow.start_time)
        assert math.isfinite(rate)
        assert rate > 0.0
        if flow.flow_id in sizes:
            assert flow.size_bytes == sizes[flow.flow_id]


def _assert_packet_physics(artifacts):
    """No port transmitted more bytes than its line rate allows."""
    network = artifacts.get("network")
    if network is None or not hasattr(network, "ports"):
        return
    elapsed = network.simulator.now
    assert elapsed > 0.0
    for port in network.ports:
        budget = port.rate_bps * elapsed / 8.0
        assert port.bytes_transmitted <= budget * 1.01 + 1e4, (
            f"port {port.name} transmitted {port.bytes_transmitted} bytes, "
            f"line-rate budget is {budget:.0f}"
        )
