"""Scenario smoke suite: every registered scenario, every supported engine.

Each case builds a registered scenario at toy scale and executes it on one
of the engines it declares -- the regression net for "adding a scenario
means writing a spec": if a spec/engine combination breaks, exactly one
case fails.  Marked ``scenario_smoke`` so CI can run the sweep explicitly
(``pytest -m scenario_smoke``); deselect with ``-m "not scenario_smoke"``.
"""

import pytest

from repro.scenarios import get_scenario, list_scenarios, run_scenario

CASES = [
    (entry.name, engine) for entry in list_scenarios() for engine in entry.engines
]


@pytest.mark.scenario_smoke
@pytest.mark.parametrize("name,engine", CASES, ids=[f"{n}@{e}" for n, e in CASES])
def test_scenario_toy_scale(name, engine):
    spec = get_scenario(name, scale="toy")
    result = run_scenario(spec, engine=engine, seed=20)
    assert result.artifacts["engine"] == engine
    assert result.rows, f"{name} on {engine} produced no rows"
    # Every engine reports its raw outputs for post-processing.
    artifacts = result.artifacts
    if engine == "fluid":
        assert (
            "final_rates" in artifacts
            or "convergence_seconds" in artifacts
            or "convergence" in artifacts
        )
    else:
        assert "completions" in artifacts or "network" in artifacts
