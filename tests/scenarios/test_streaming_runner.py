"""Streaming runner gates: parity with post-hoc, checkpoint/resume, memory.

These are the acceptance criteria for the streaming result layer:

* streaming P50/P99 within 1% of the exact post-hoc percentiles,
* interrupt -> resume bit-identical to an uninterrupted run,
* memory bounded by the active-flow population, not the trace length,
* foreign/stale checkpoints rejected instead of silently resumed.
"""

import pickle
import tracemalloc
from dataclasses import replace

import numpy as np
import pytest

from repro.scenarios import get_scenario, run_scenario, run_scenario_streaming
from repro.scenarios.runner import CHECKPOINT_VERSION, load_checkpoint, write_checkpoint


def _sized_spec(num_flows, seed=3):
    """fig5/websearch with the flow count overridden (a workload param,
    so ``.using()`` sizing does not reach it)."""
    base = get_scenario("fig5/websearch")
    params = {**dict(base.workload.params), "num_flows": num_flows}
    return replace(base, workload=replace(base.workload, params=params), seed=seed)


@pytest.fixture(scope="module")
def parity_pair():
    """One post-hoc and one streaming run of the same 2000-flow replay."""
    spec = _sized_spec(2000)
    posthoc = run_scenario(spec, engine="flow")
    streaming = run_scenario_streaming(spec, engine="flow")
    return posthoc, streaming


class TestStreamingVsPostHoc:
    def test_flow_counts_match(self, parity_pair):
        posthoc, streaming = parity_pair
        assert streaming.rows[0]["flows_completed"] == len(posthoc.rows)

    def test_quantiles_within_one_percent(self, parity_pair):
        posthoc, streaming = parity_pair
        fcts = [row["fct"] for row in posthoc.rows]
        summary = streaming.rows[0]
        for key, q in (("fct_p50", 50), ("fct_p99", 99)):
            exact = float(np.percentile(fcts, q))
            assert abs(summary[key] - exact) / exact < 0.01, key

    def test_bytes_delivered_exact(self, parity_pair):
        posthoc, streaming = parity_pair
        exact = sum(row["size_bytes"] for row in posthoc.rows)
        assert streaming.rows[0]["bytes_delivered"] == pytest.approx(exact)

    def test_no_per_flow_accumulation(self, parity_pair):
        _, streaming = parity_pair
        assert len(streaming.rows) == 1
        assert "completions" not in streaming.artifacts
        assert "arrivals" not in streaming.artifacts
        telemetry = streaming.artifacts["streaming"]
        # Every completion was folded into the sketch, not stored.  (Sketch
        # compression only bites for n >> 1/epsilon; the asymptotic size
        # bound is covered in tests/analysis/test_streaming.py.)
        assert telemetry.fct_sketch.count == telemetry.flows_completed

    def test_utilization_windows_cover_run(self, parity_pair):
        _, streaming = parity_pair
        windows = streaming.artifacts["utilization_windows"]
        assert windows
        assert sum(row["bytes"] for row in windows) == pytest.approx(
            streaming.rows[0]["bytes_delivered"]
        )


class TestCheckpointResume:
    def test_interrupt_then_resume_is_bit_identical(self, tmp_path):
        spec = _sized_spec(400, seed=5)
        reference = run_scenario_streaming(spec, engine="flow")

        path = tmp_path / "run.ckpt"
        calls = {"n": 0}

        def stop_after_two_segments():
            calls["n"] += 1
            return calls["n"] >= 2

        partial = run_scenario_streaming(
            spec,
            engine="flow",
            checkpoint_path=path,
            checkpoint_every=2e-3,
            should_stop=stop_after_two_segments,
        )
        assert partial.artifacts["interrupted"] is True
        assert path.exists()

        resumed = run_scenario_streaming(
            spec, engine="flow", checkpoint_path=path, checkpoint_every=2e-3
        )
        assert resumed.artifacts["resumed_from"] == str(path)
        assert "interrupted" not in resumed.artifacts
        assert resumed.rows == reference.rows  # bit-identical, not approx

    def test_fresh_ignores_existing_checkpoint(self, tmp_path):
        spec = _sized_spec(100, seed=2)
        path = tmp_path / "run.ckpt"
        first = run_scenario_streaming(spec, engine="flow", checkpoint_path=path)
        fresh = run_scenario_streaming(
            spec, engine="flow", checkpoint_path=path, resume=False
        )
        assert "resumed_from" not in fresh.artifacts
        assert fresh.rows == first.rows

    def test_foreign_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        run_scenario_streaming(
            _sized_spec(100, seed=2), engine="flow", checkpoint_path=path
        )
        with pytest.raises(ValueError, match="different scenario"):
            run_scenario_streaming(
                _sized_spec(100, seed=9), engine="flow", checkpoint_path=path
            )

    def test_version_mismatch_rejected(self, tmp_path):
        spec = _sized_spec(100, seed=2)
        path = tmp_path / "run.ckpt"
        write_checkpoint(
            path, {"version": CHECKPOINT_VERSION + 1, "spec_fingerprint": "x"}
        )
        with pytest.raises(ValueError, match="format version"):
            load_checkpoint(path, spec)

    def test_checkpoint_file_is_a_complete_pickle(self, tmp_path):
        path = tmp_path / "run.ckpt"
        run_scenario_streaming(
            _sized_spec(100, seed=2), engine="flow", checkpoint_path=path
        )
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        assert payload["done"] is True
        assert payload["consumed"] == 100


class TestRunScenarioIntegration:
    def test_streaming_sizing_key_routes_run_scenario(self):
        """``streaming=True`` in sizing sends ``run_scenario`` through the
        streaming executor -- sweep cells get summary rows automatically."""
        result = run_scenario(_sized_spec(100, seed=2), engine="flow", streaming=True)
        assert len(result.rows) == 1
        assert "fct_p50" in result.rows[0]
        assert "completions" not in result.artifacts

    def test_streaming_rejects_non_flow_engines(self):
        spec = get_scenario("fig5/websearch")
        with pytest.raises(ValueError, match="flow engine only"):
            run_scenario_streaming(spec, engine="fluid")

    def test_streaming_rejects_dict_backend(self):
        spec = _sized_spec(50, seed=2)
        with pytest.raises(ValueError, match="array"):
            run_scenario_streaming(spec, engine="flow", flow_backend="dict")


class TestBoundedMemory:
    def test_streaming_peak_below_posthoc_peak(self):
        """At reduced scale the streaming path must already allocate less
        than the materializing path; the gap widens with trace length."""
        spec = _sized_spec(1500, seed=4)

        tracemalloc.start()
        run_scenario(spec, engine="flow")
        _, posthoc_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        tracemalloc.start()
        result = run_scenario_streaming(spec, engine="flow")
        _, streaming_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert result.rows[0]["flows_completed"] == 1500
        assert streaming_peak < posthoc_peak
