"""Unit and integration tests for the declarative fault-injection subsystem."""

import math

import pytest

from repro.core.utility import LogUtility
from repro.scenarios.build import (
    FlowSpec,
    explicit_links_topology,
    explicit_workload,
    fanout_workload,
    per_flow_objective,
    single_link_topology,
)
from repro.scenarios.faults import (
    CapacityInjector,
    CapacityRamp,
    CapacityTrace,
    ControlPlaneFault,
    FaultPlan,
    FluctuatingCapacity,
    LinkDegrade,
    LinkFail,
    LinkFlap,
    LinkRestore,
    compile_step_schedule,
    fault_plan,
    step_of,
)
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec

NOMINAL = {"link": 10e9, "other": 4e9}


class TestTimelineCompilation:
    def test_fail_restore_ordering(self):
        plan = fault_plan(
            LinkFail("link", at=2e-3),
            LinkRestore("link", at=4e-3),
        )
        timeline = plan.capacity_timeline(NOMINAL)
        assert [(c.time, c.link, c.capacity) for c in timeline] == [
            (2e-3, "link", 0.0),
            (4e-3, "link", 10e9),
        ]

    def test_restore_with_explicit_capacity(self):
        plan = fault_plan(LinkRestore("link", at=1e-3, capacity=3e9))
        assert plan.capacity_timeline(NOMINAL)[0].capacity == 3e9

    def test_degrade_factor_vs_absolute(self):
        by_factor = fault_plan(LinkDegrade("link", at=1e-3, factor=0.25))
        by_capacity = fault_plan(LinkDegrade("link", at=1e-3, capacity=2.5e9))
        assert by_factor.capacity_timeline(NOMINAL)[0].capacity == 2.5e9
        assert by_capacity.capacity_timeline(NOMINAL)[0].capacity == 2.5e9

    def test_degrade_requires_exactly_one_of_factor_capacity(self):
        with pytest.raises(ValueError):
            LinkDegrade("link", at=1e-3)
        with pytest.raises(ValueError):
            LinkDegrade("link", at=1e-3, factor=0.5, capacity=1e9)

    def test_equal_time_changes_keep_event_order(self):
        plan = fault_plan(
            LinkDegrade("link", at=1e-3, factor=0.5),
            LinkFail("link", at=1e-3),
        )
        capacities = [c.capacity for c in plan.capacity_timeline(NOMINAL)]
        assert capacities == [5e9, 0.0]  # later event wins when applied in order

    def test_flap_expansion_alternates_and_ends_healthy(self):
        plan = fault_plan(
            LinkFlap("link", start=1e-3, end=3e-3, period=1e-3, down_fraction=0.5)
        )
        timeline = plan.capacity_timeline(NOMINAL)
        assert [c.capacity for c in timeline] == [0.0, 10e9, 0.0, 10e9, 10e9]
        assert timeline[-1].time == 3e-3
        assert timeline[-1].capacity == 10e9

    def test_flap_down_factor(self):
        plan = fault_plan(
            LinkFlap("link", start=0.0, end=1e-3, period=1e-3, down_factor=0.3)
        )
        assert plan.capacity_timeline(NOMINAL)[0].capacity == pytest.approx(3e9)

    def test_ramp_is_linear_and_inclusive(self):
        plan = fault_plan(
            CapacityRamp("link", start=0.0, end=4e-3, from_factor=1.0, to_factor=0.2,
                         steps=4)
        )
        timeline = plan.capacity_timeline(NOMINAL)
        assert len(timeline) == 5
        assert timeline[0].capacity == pytest.approx(10e9)
        assert timeline[-1].capacity == pytest.approx(2e9)
        deltas = [
            timeline[i + 1].capacity - timeline[i].capacity for i in range(4)
        ]
        assert all(d == pytest.approx(deltas[0]) for d in deltas)

    def test_trace_driven(self):
        plan = fault_plan(
            CapacityTrace("link", trace=((0.0, 1.0), (1e-3, 0.5), (2e-3, 0.9)))
        )
        capacities = [c.capacity for c in plan.capacity_timeline(NOMINAL)]
        assert capacities == [pytest.approx(10e9), pytest.approx(5e9), pytest.approx(9e9)]

    def test_fluctuating_is_seed_deterministic(self):
        plan = fault_plan(
            FluctuatingCapacity("link", start=0.0, end=5e-3, interval=1e-3)
        )
        first = plan.capacity_timeline(NOMINAL, seed=7)
        again = plan.capacity_timeline(NOMINAL, seed=7)
        different = plan.capacity_timeline(NOMINAL, seed=8)
        assert first == again
        assert first != different
        for change in first:
            assert 0.05 * 10e9 <= change.capacity <= 10e9
        assert first[-1].capacity == 10e9  # returns to nominal at end

    def test_fluctuating_event_seed_overrides_scenario_seed(self):
        plan = fault_plan(
            FluctuatingCapacity("link", start=0.0, end=5e-3, interval=1e-3, seed=99)
        )
        assert plan.capacity_timeline(NOMINAL, seed=1) == plan.capacity_timeline(
            NOMINAL, seed=2
        )

    def test_unknown_link_raises(self):
        plan = fault_plan(LinkFail("no-such-link", at=1e-3))
        with pytest.raises(KeyError):
            plan.capacity_timeline(NOMINAL)

    def test_negative_time_raises(self):
        plan = fault_plan(LinkFail("link", at=-1e-3))
        with pytest.raises(ValueError):
            plan.capacity_timeline(NOMINAL)

    def test_negative_capacity_clamped_to_zero(self):
        plan = fault_plan(LinkDegrade("link", at=1e-3, capacity=-5.0))
        assert plan.capacity_timeline(NOMINAL)[0].capacity == 0.0

    def test_affected_links_first_mention_order(self):
        plan = fault_plan(
            LinkFail("other", at=1e-3),
            LinkFail("link", at=2e-3),
            LinkRestore("other", at=3e-3),
        )
        assert plan.affected_links == ("other", "link")
        # Control-plane events never touch capacities.
        with_control = fault_plan(
            ControlPlaneFault(start=0.0, end=1e-3, drop_probability=0.5),
            LinkFail("link", at=1e-3),
        )
        assert with_control.affected_links == ("link",)

    def test_rejects_unknown_event_type(self):
        with pytest.raises(TypeError):
            FaultPlan(events=("not-an-event",))


class TestStepGrid:
    def test_step_of_snaps_to_boundaries(self):
        dt = 30e-6
        assert step_of(0.0, dt) == 0
        assert step_of(30e-6, dt) == 1  # exactly on the boundary
        assert step_of(31e-6, dt) == 2  # strictly after -> next boundary
        assert step_of(1.8e-3, dt) == 60

    def test_step_of_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            step_of(1.0, 0.0)

    def test_compile_step_schedule_groups_and_orders(self):
        plan = fault_plan(
            LinkFail("link", at=1e-3),
            LinkDegrade("other", at=1e-3, factor=0.5),
            LinkRestore("link", at=2e-3),
        )
        schedule = compile_step_schedule(plan.capacity_timeline(NOMINAL), dt=1e-3)
        assert sorted(schedule) == [1, 2]
        assert schedule[1] == [("link", 0.0), ("other", 2e9)]
        assert schedule[2] == [("link", 10e9)]


class TestCapacityInjector:
    def test_cursor_applies_in_order_and_once(self):
        plan = fault_plan(
            LinkFail("link", at=1e-3),
            LinkRestore("link", at=2e-3),
        )
        injector = CapacityInjector(plan.capacity_timeline(NOMINAL))
        applied = []
        assert injector.apply_until(lambda l, c: applied.append((l, c)), 0.5e-3) == 0
        assert injector.apply_until(lambda l, c: applied.append((l, c)), 1.5e-3) == 1
        assert applied == [("link", 0.0)]
        assert not injector.exhausted
        assert injector.apply_until(lambda l, c: applied.append((l, c)), 10.0) == 1
        assert applied == [("link", 0.0), ("link", 10e9)]
        assert injector.exhausted
        # Idempotent once drained.
        assert injector.apply_until(lambda l, c: applied.append((l, c)), 20.0) == 0


class TestControlPriceNoise:
    def window(self, p, links=None):
        return fault_plan(
            ControlPlaneFault(start=1e-3, end=2e-3, drop_probability=p, links=links)
        ).control_noise(seed=3)

    def test_no_control_events_means_no_noise(self):
        assert fault_plan(LinkFail("link", at=1e-3)).control_noise() is None

    def test_snapshot_none_outside_window(self):
        noise = self.window(1.0)
        assert noise.snapshot(0.5e-3, {"link": 1.0}) is None
        assert noise.snapshot(2.5e-3, {"link": 1.0}) is None
        assert noise.snapshot(1.5e-3, {"link": 1.0}) == {"link": 1.0}

    def test_probability_one_reverts_every_price(self):
        noise = self.window(1.0)
        prices = {"link": 1.0, "other": 2.0}
        snapshot = noise.snapshot(1.5e-3, prices)
        prices["link"] = 5.0
        prices["other"] = 6.0
        dropped = noise.apply(1.5e-3, prices, snapshot)
        assert dropped == 2
        assert prices == {"link": 1.0, "other": 2.0}
        assert noise.drops == 2

    def test_probability_zero_never_reverts(self):
        noise = self.window(0.0)
        prices = {"link": 1.0}
        snapshot = noise.snapshot(1.5e-3, prices)
        prices["link"] = 5.0
        assert noise.apply(1.5e-3, prices, snapshot) == 0
        assert prices["link"] == 5.0

    def test_restricted_links(self):
        noise = self.window(1.0, links=("link",))
        prices = {"link": 1.0, "other": 2.0}
        snapshot = noise.snapshot(1.5e-3, prices)
        prices["link"] = 5.0
        prices["other"] = 6.0
        noise.apply(1.5e-3, prices, snapshot)
        assert prices == {"link": 1.0, "other": 6.0}

    def test_apply_outside_window_is_noop(self):
        noise = self.window(1.0)
        prices = {"link": 5.0}
        assert noise.apply(1.5e-3, prices, None) == 0
        assert prices["link"] == 5.0

    def test_drop_probability_validated(self):
        with pytest.raises(ValueError):
            ControlPlaneFault(start=0.0, end=1e-3, drop_probability=1.5)


class TestSpecWiring:
    def base_spec(self, **kwargs):
        return ScenarioSpec(
            name="unit/faults",
            topology=single_link_topology(10e9),
            workload=fanout_workload(3),
            sizing={"iterations": 40},
            **kwargs,
        )

    def test_spec_accepts_fault_plan(self):
        plan = fault_plan(LinkFail("link", at=1e-3))
        assert self.base_spec(faults=plan).faults is plan

    def test_spec_rejects_non_plan(self):
        with pytest.raises(TypeError):
            self.base_spec(faults=[LinkFail("link", at=1e-3)])

    def test_using_attaches_plan_to_variant(self):
        spec = self.base_spec()
        plan = fault_plan(LinkFail("link", at=1e-3))
        variant = spec.using(faults=plan)
        assert variant.faults is plan
        assert spec.faults is None


class TestFluidInjection:
    def fail_restore_spec(self):
        """Two flows on an explicit two-link topology; one link fails."""
        return ScenarioSpec(
            name="unit/fluid-fault",
            topology=explicit_links_topology({"healthy": 10e9, "victim": 10e9}),
            workload=explicit_workload(
                [
                    FlowSpec("safe", ("healthy",), LogUtility()),
                    FlowSpec("hit", ("victim",), LogUtility()),
                ]
            ),
            objective=per_flow_objective(),
            seed=5,
            sizing={"iterations": 300},
            faults=fault_plan(
                LinkFail("victim", at=0.9e-3),       # step 30 of 300
                LinkRestore("victim", at=1.8e-3),    # step 60
            ),
        )

    def test_fluid_fault_run_produces_resilience_artifacts(self):
        result = run_scenario(self.fail_restore_spec())
        assert "resilience" in result.artifacts
        assert "post_fault_oracle" in result.artifacts
        report = result.artifacts["resilience"]
        assert math.isfinite(report["reconvergence_iterations"])
        assert report["affected_flow_count"] == 1
        # During the outage the victim flow's rate visibly dips ...
        timeseries = result.artifacts["timeseries"]
        outage = [rates["hit"] for rates in timeseries[35:55]]
        assert max(outage) < 1e9
        # ... and after restoration it recovers against the post-fault Oracle.
        final = result.artifacts["final_rates"]
        assert final["hit"] == pytest.approx(
            result.artifacts["post_fault_oracle"]["hit"], rel=0.1
        )
        assert final["safe"] > 1e9

    def test_fluid_fault_rerun_is_bit_identical(self):
        first = run_scenario(self.fail_restore_spec())
        second = run_scenario(self.fail_restore_spec())
        assert first.rows == second.rows
        assert first.artifacts["resilience"] == second.artifacts["resilience"]

    def test_control_plane_drops_are_counted(self):
        spec = self.fail_restore_spec()
        spec = spec.using(
            faults=fault_plan(
                LinkDegrade("victim", at=0.9e-3, factor=0.5),
                LinkRestore("victim", at=1.8e-3),
                ControlPlaneFault(start=0.9e-3, end=1.8e-3, drop_probability=1.0),
            )
        )
        result = run_scenario(spec)
        # 30 steps inside the window x 2 links, every update dropped.
        assert result.artifacts["control_drops"] == 60


class TestFlowInjection:
    def test_link_failure_stalls_flow_until_restore(self):
        """A mid-transfer outage delays completion by about its duration."""
        from repro.scenarios.build import poisson_workload

        base = ScenarioSpec(
            name="unit/flow-fault",
            topology=single_link_topology(10e9),
            workload=poisson_workload(num_flows=4, load=0.1, num_servers=2, seed=2),
            engine="flow",
            seed=2,
            sizing={"max_time": 1.0},
        )
        healthy = run_scenario(base)
        # The largest flow spans many 30 us steps, so a mid-transfer outage
        # is guaranteed to hit it (tiny flows can finish inside one step,
        # before the next injection boundary).
        victim = max(healthy.rows, key=lambda row: row["size_bytes"])
        outage = 1e-3
        faulted = run_scenario(
            base.using(
                faults=fault_plan(
                    LinkFail("link", at=victim["start_time"] + 1e-5),
                    LinkRestore("link", at=victim["start_time"] + 1e-5 + outage),
                )
            )
        )
        assert len(faulted.rows) == len(healthy.rows)  # everything still completes
        faulted_victim = next(
            row for row in faulted.rows if row["flow"] == victim["flow"]
        )
        # The victim was stalled by about the outage duration.
        assert faulted_victim["finish_time"] > victim["finish_time"] + 0.9 * outage

    def test_flow_fault_rerun_is_bit_identical(self):
        from repro.scenarios.build import poisson_workload

        spec = ScenarioSpec(
            name="unit/flow-fault-det",
            topology=single_link_topology(10e9),
            workload=poisson_workload(num_flows=6, load=0.3, num_servers=2, seed=4),
            engine="flow",
            seed=4,
            sizing={"max_time": 1.0},
            faults=fault_plan(
                FluctuatingCapacity("link", start=0.0, end=2e-3, interval=2e-4)
            ),
        )
        assert run_scenario(spec).rows == run_scenario(spec).rows
