"""Parity gates for the streaming telemetry sketches.

The exact post-hoc statistics (:func:`repro.analysis.stats.percentile`
over materialized lists) are the reference; the sketches must track them
within their declared error bounds on adversarial data shapes.
"""

import math
import pickle
import random
from bisect import bisect_left, bisect_right

import numpy as np
import pytest

from repro.analysis.streaming import (
    GKQuantiles,
    P2Quantile,
    StreamingMoments,
    WindowedUtilization,
)


def _datasets():
    rng = random.Random(7)
    return {
        "uniform": [rng.random() for _ in range(20_000)],
        "lognormal-heavy": [rng.lognormvariate(0.0, 2.0) for _ in range(20_000)],
        "exponential": [rng.expovariate(3.0) for _ in range(20_000)],
        "sorted": [float(i) for i in range(10_000)],
        "reversed": [float(i) for i in range(10_000, 0, -1)],
    }


class TestGKQuantiles:
    @pytest.mark.parametrize("name", list(_datasets()))
    def test_rank_error_bound(self, name):
        """GK's defining guarantee: returned values are within eps*n ranks."""
        data = _datasets()[name]
        epsilon = 1e-3
        sketch = GKQuantiles(epsilon=epsilon)
        for value in data:
            sketch.add(value)
        ordered = sorted(data)
        n = len(ordered)
        for q in (0.01, 0.25, 0.5, 0.75, 0.9, 0.99):
            value = sketch.query(q)
            lo = bisect_left(ordered, value)
            hi = bisect_right(ordered, value)
            target = q * n
            rank_error = min(abs(lo - target), abs(hi - target))
            assert rank_error <= epsilon * n + 1, (name, q, rank_error)

    def test_value_accuracy_default_epsilon(self):
        """At the telemetry default epsilon, P50/P99 are within 1% of the
        exact percentile on an FCT-shaped distribution at bench scale
        (the streaming-vs-post-hoc parity gate)."""
        rng = random.Random(7)
        data = [rng.expovariate(1.0) for _ in range(50_000)]
        sketch = GKQuantiles()
        for value in data:
            sketch.add(value)
        for q in (0.5, 0.99):
            exact = float(np.percentile(data, q * 100))
            assert abs(sketch.query(q) - exact) / exact < 0.01

    def test_bounded_size(self):
        """Retained entries grow like O((1/eps) log(eps*n)), not like n."""
        sketch = GKQuantiles(epsilon=1e-3)
        rng = random.Random(1)
        for _ in range(50_000):
            sketch.add(rng.random())
        assert sketch.count == 50_000
        assert sketch.size < 2_000  # vs 50k raw samples

    def test_small_samples_exact_ranks(self):
        sketch = GKQuantiles(epsilon=0.01)
        for value in [5.0, 1.0, 3.0]:
            sketch.add(value)
        assert sketch.query(0.0) == 1.0
        assert sketch.query(1.0) == 5.0

    def test_empty_and_invalid(self):
        sketch = GKQuantiles()
        with pytest.raises(ValueError):
            sketch.query(0.5)
        sketch.add(1.0)
        with pytest.raises(ValueError):
            sketch.query(1.5)
        with pytest.raises(ValueError):
            GKQuantiles(epsilon=0.0)

    def test_pickle_roundtrip_continues_identically(self):
        rng = random.Random(3)
        data = [rng.expovariate(1.0) for _ in range(5_000)]
        a = GKQuantiles()
        for value in data[:2_500]:
            a.add(value)
        b = pickle.loads(pickle.dumps(a))
        for value in data[2_500:]:
            a.add(value)
            b.add(value)
        for q in (0.5, 0.9, 0.99):
            assert a.query(q) == b.query(q)


class TestP2Quantile:
    def test_small_samples_exact(self):
        p = P2Quantile(0.5)
        for value in [3.0, 1.0, 2.0]:
            p.add(value)
        assert p.value() == 2.0

    def test_tracks_known_quantiles(self):
        rng = random.Random(11)
        data = [rng.expovariate(2.0) for _ in range(50_000)]
        p50, p99 = P2Quantile(0.5), P2Quantile(0.99)
        for value in data:
            p50.add(value)
            p99.add(value)
        exact50 = float(np.percentile(data, 50))
        exact99 = float(np.percentile(data, 99))
        assert abs(p50.value() - exact50) / exact50 < 0.02
        assert abs(p99.value() - exact99) / exact99 < 0.05

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_empty(self):
        with pytest.raises(ValueError):
            P2Quantile(0.5).value()

    def test_picklable(self):
        p = P2Quantile(0.9)
        for value in range(100):
            p.add(float(value))
        q = pickle.loads(pickle.dumps(p))
        assert q.value() == p.value()


class TestStreamingMoments:
    def test_matches_numpy(self):
        rng = random.Random(5)
        data = [rng.lognormvariate(0.0, 1.0) for _ in range(3_000)]
        m = StreamingMoments()
        for value in data:
            m.add(value)
        assert m.count == len(data)
        assert m.mean == pytest.approx(float(np.mean(data)), rel=1e-12)
        assert m.std == pytest.approx(float(np.std(data)), rel=1e-9)
        assert m.min == min(data)
        assert m.max == max(data)
        assert m.total() == pytest.approx(sum(data), rel=1e-12)

    def test_empty(self):
        m = StreamingMoments()
        assert m.count == 0
        assert m.variance == 0.0
        assert math.isinf(m.min)


class TestWindowedUtilization:
    def test_exact_against_posthoc_binning(self):
        """Windowed rows must equal an exact post-hoc histogram reduction."""
        rng = random.Random(9)
        window = 0.25
        events = sorted(
            (rng.random() * 5.0, rng.randint(1, 10_000)) for _ in range(2_000)
        )
        w = WindowedUtilization(window=window, capacity_bps=1e9)
        for time, nbytes in events:
            w.add(time, nbytes)
        rows = w.finish()
        reference = {}
        for time, nbytes in events:
            reference.setdefault(int(time / window), 0.0)
            reference[int(time / window)] += nbytes
        got = {int(round(r["window_start"] / window)): r["bytes"] for r in rows}
        assert got == reference
        for row in rows:
            assert row["throughput_bps"] == pytest.approx(8.0 * row["bytes"] / window)
            assert row["utilization"] == pytest.approx(row["throughput_bps"] / 1e9)

    def test_rejects_time_travel(self):
        w = WindowedUtilization(window=1.0)
        w.add(5.0, 10)
        with pytest.raises(ValueError):
            w.add(2.0, 10)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            WindowedUtilization(window=0.0)

    def test_memory_is_window_count_not_event_count(self):
        w = WindowedUtilization(window=1.0)
        for i in range(10_000):
            w.add(i * 3e-4, 1)  # 10k events land in just 3 windows
        assert len(w.finish()) <= 4
