"""Tests for the analysis helpers: stats, convergence, deviation and FCT."""

import math

import pytest

from repro.analysis.convergence import ewma_filter, filter_rise_time, measure_convergence_time
from repro.analysis.deviation import bin_by_bdp, normalized_deviation
from repro.analysis.fct import FctRecord, ideal_fct, normalized_fct, summarize_fcts
from repro.analysis.stats import BoxStats, cdf_points, percentile, summarize


class TestStats:
    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_cdf_points(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(1 / 3)), (2.0, pytest.approx(2 / 3)), (3.0, 1.0)]

    def test_box_stats(self):
        stats = BoxStats.from_values(list(range(1, 101)) + [1000.0])
        assert stats.median == pytest.approx(51.0)
        assert stats.whisker_high < 1000.0  # the outlier is excluded

    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["count"] == 3


class TestEwmaFilter:
    def test_step_response(self):
        times = [i * 1e-5 for i in range(200)]
        values = [0.0] * 10 + [1.0] * 190
        filtered = ewma_filter(times, values, time_constant=80e-6)
        assert filtered[-1] == pytest.approx(1.0, abs=1e-3)
        assert filtered[11] < 0.5  # the filter lags the step

    def test_rise_time_matches_paper(self):
        """The paper subtracts ~185 us for an 80 us filter reaching 90%."""
        assert filter_rise_time(80e-6, 0.9) == pytest.approx(184e-6, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            ewma_filter([0.0], [1.0, 2.0], 1.0)
        with pytest.raises(ValueError):
            ewma_filter([0.0], [1.0], 0.0)


class TestMeasureConvergenceTime:
    def test_simple_step_trace(self):
        traces = {
            "a": [(0.0, 0.0), (1e-3, 0.5), (2e-3, 1.0), (3e-3, 1.0), (4e-3, 1.0)],
        }
        time = measure_convergence_time(traces, {"a": 1.0}, start_time=0.0)
        assert time == pytest.approx(2e-3)

    def test_never_converges(self):
        traces = {"a": [(0.0, 0.0), (1e-3, 0.1)]}
        assert measure_convergence_time(traces, {"a": 1.0}, start_time=0.0) is None

    def test_hold_time_requirement(self):
        traces = {"a": [(1e-3, 1.0), (2e-3, 0.0), (3e-3, 1.0), (4e-3, 1.0), (5e-3, 1.0)]}
        time = measure_convergence_time(traces, {"a": 1.0}, start_time=0.0, hold_time=1.5e-3)
        assert time == pytest.approx(3e-3)


class TestDeviation:
    def test_normalized_deviation(self):
        assert normalized_deviation(2.0, 1.0) == pytest.approx(1.0)
        assert normalized_deviation(0.5, 1.0) == pytest.approx(-0.5)
        with pytest.raises(ValueError):
            normalized_deviation(1.0, 0.0)

    def test_bin_by_bdp(self):
        bdp = 1000.0
        sizes = {"tiny": 500.0, "small": 7_000.0, "large": 500_000.0}
        deviations = {"tiny": 0.1, "small": -0.2, "large": 0.0}
        bins = bin_by_bdp(sizes, deviations, bdp)
        assert bins[0].stats.count == 1  # (0-5) BDP
        assert bins[1].stats.count == 1  # (5-10)
        assert bins[3].stats.count == 1  # (100-1K)
        assert bins[4].stats is None

    def test_bin_labels(self):
        bins = bin_by_bdp({}, {}, 1000.0)
        assert [b.label for b in bins] == ["(0-5)", "(5-10)", "(10-100)", "(100-1K)", "(1K-10K)"]


class TestFct:
    def test_ideal_fct(self):
        assert ideal_fct(1_000_000, 1e9, 10e-6) == pytest.approx(8e-3 + 10e-6)

    def test_normalized_fct(self):
        assert normalized_fct(16e-3, 1_000_000, 1e9, 0.0) == pytest.approx(2.0)

    def test_summarize_fcts(self):
        records = [
            FctRecord("a", 1_000_000, 0.0, 16e-3),
            FctRecord("b", 1_000_000, 0.0, 8e-3),
        ]
        summary = summarize_fcts(records, 1e9, 0.0)
        assert summary.count == 2
        assert summary.mean_normalized_fct == pytest.approx(1.5)

    def test_summarize_size_filter(self):
        records = [FctRecord("a", 10_000, 0.0, 1e-3), FctRecord("b", 10_000_000, 0.0, 0.1)]
        small = summarize_fcts(records, 1e9, 0.0, size_range=(0, 1_000_000))
        assert small.count == 1

    def test_empty_summary(self):
        summary = summarize_fcts([], 1e9, 0.0)
        assert summary.count == 0
        assert math.isnan(summary.mean_normalized_fct)
