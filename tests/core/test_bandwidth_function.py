"""Unit tests for bandwidth functions and their water-filling allocations."""

import pytest

from repro.core.bandwidth_function import (
    PiecewiseLinearBandwidthFunction,
    fig2_flow1,
    fig2_flow2,
    max_min_fair_shares,
    single_link_allocation,
)


class TestPiecewiseLinearBandwidthFunction:
    def test_evaluation_on_segments(self):
        bwf = PiecewiseLinearBandwidthFunction([(0, 0), (2, 10), (4, 20)])
        assert bwf(0.0) == 0.0
        assert bwf(1.0) == pytest.approx(5.0)
        assert bwf(3.0) == pytest.approx(15.0)

    def test_plateau_beyond_last_breakpoint(self):
        bwf = PiecewiseLinearBandwidthFunction([(0, 0), (2, 10)])
        assert bwf(100.0) == 10.0

    def test_inverse_roundtrip(self):
        bwf = fig2_flow1()
        for fair_share in [0.5, 1.0, 2.2, 3.0]:
            assert bwf.inverse(bwf(fair_share)) == pytest.approx(fair_share, rel=1e-9)

    def test_inverse_of_flat_prefix(self):
        """Flow 2 gets nothing until fair share 2; its inverse skips the flat part."""
        bwf = fig2_flow2()
        assert bwf.inverse(5e9) == pytest.approx(2.25)
        assert bwf.inverse(0.0) == 0.0

    def test_non_decreasing_required(self):
        with pytest.raises(ValueError):
            PiecewiseLinearBandwidthFunction([(0, 10), (1, 5)])

    def test_strictly_increasing_fair_shares_required(self):
        with pytest.raises(ValueError):
            PiecewiseLinearBandwidthFunction([(0, 0), (0, 5)])

    def test_first_breakpoint_must_be_zero(self):
        with pytest.raises(ValueError):
            PiecewiseLinearBandwidthFunction([(1, 0), (2, 5)])

    def test_needs_two_breakpoints(self):
        with pytest.raises(ValueError):
            PiecewiseLinearBandwidthFunction([(0, 0)])

    def test_integral_inverse_power_zero_rate(self):
        assert fig2_flow1().integral_inverse_power(0.0, 5.0) == 0.0

    def test_integral_inverse_power_monotone(self):
        bwf = fig2_flow1()
        values = [bwf.integral_inverse_power(rate, 5.0) for rate in [1e9, 5e9, 10e9, 14e9]]
        assert all(b > a for a, b in zip(values, values[1:]))


class TestSingleLinkAllocation:
    """The Figure 2 example: two flows on a 10 Gbps and a 25 Gbps link."""

    def test_figure2_at_10gbps(self):
        fair_share, allocation = single_link_allocation([fig2_flow1(), fig2_flow2()], 10e9)
        assert fair_share == pytest.approx(2.0, rel=1e-6)
        assert allocation[0] == pytest.approx(10e9, rel=1e-6)
        assert allocation[1] == pytest.approx(0.0, abs=1e3)

    def test_figure2_at_25gbps(self):
        fair_share, allocation = single_link_allocation([fig2_flow1(), fig2_flow2()], 25e9)
        assert fair_share == pytest.approx(2.5, rel=1e-6)
        assert allocation[0] == pytest.approx(15e9, rel=1e-6)
        assert allocation[1] == pytest.approx(10e9, rel=1e-6)

    def test_capacity_exceeding_demand(self):
        fair_share, allocation = single_link_allocation([fig2_flow1(), fig2_flow2()], 100e9)
        assert allocation[0] == pytest.approx(fig2_flow1().max_bandwidth)
        assert allocation[1] == pytest.approx(fig2_flow2().max_bandwidth)
        assert fair_share == pytest.approx(4.5)

    def test_never_oversubscribes(self):
        for capacity in [1e9, 5e9, 12e9, 20e9, 33e9]:
            _, allocation = single_link_allocation([fig2_flow1(), fig2_flow2()], capacity)
            assert sum(allocation) <= capacity * (1 + 1e-6)

    def test_empty_flow_list(self):
        fair_share, allocation = single_link_allocation([], 10e9)
        assert fair_share == 0.0
        assert allocation == []

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            single_link_allocation([fig2_flow1()], -1.0)


class TestMaxMinFairShares:
    def test_single_link_matches_water_filling(self):
        bwfs = [fig2_flow1(), fig2_flow2()]
        paths = [("l",), ("l",)]
        fair_shares, allocations = max_min_fair_shares(bwfs, paths, {"l": 25e9})
        assert allocations[0] == pytest.approx(15e9, rel=1e-4)
        assert allocations[1] == pytest.approx(10e9, rel=1e-4)

    def test_figure10_topology_before_capacity_change(self):
        """Flow 1 on links (top, middle), flow 2 on (middle, bottom); middle is 5 Gbps."""
        bwfs = [fig2_flow1(), fig2_flow2()]
        paths = [("top", "middle"), ("middle", "bottom")]
        capacities = {"top": 5e9, "middle": 5e9, "bottom": 3e9}
        _, allocations = max_min_fair_shares(bwfs, paths, capacities)
        # Flow 1 has strict priority on the shared 5 Gbps middle link.
        assert allocations[0] == pytest.approx(5e9, rel=1e-3)
        assert allocations[1] == pytest.approx(0.0, abs=1e7)

    def test_unconstrained_flows_reach_plateau(self):
        bwfs = [fig2_flow1()]
        paths = [("l",)]
        _, allocations = max_min_fair_shares(bwfs, paths, {"l": 100e9})
        assert allocations[0] == pytest.approx(fig2_flow1().max_bandwidth)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            max_min_fair_shares([fig2_flow1()], [], {"l": 1e9})
