"""Tests for the Table 2 parameter defaults."""

import pytest

from repro.core.config import (
    DctcpParameters,
    DgdParameters,
    NumFabricParameters,
    PfabricParameters,
    RcpStarParameters,
    SimulationParameters,
    default_parameters,
)


class TestNumFabricParameters:
    def test_table2_defaults(self):
        params = NumFabricParameters()
        assert params.ewma_time == pytest.approx(20e-6)
        assert params.delay_slack == pytest.approx(6e-6)
        assert params.price_update_interval == pytest.approx(30e-6)
        assert params.eta == 5.0
        assert params.beta == 0.5

    def test_slowed_down_scales_control_loops(self):
        params = NumFabricParameters().slowed_down(2.0)
        assert params.ewma_time == pytest.approx(40e-6)
        assert params.price_update_interval == pytest.approx(60e-6)
        # Non-control-loop fields are untouched.
        assert params.eta == 5.0
        assert params.delay_slack == pytest.approx(6e-6)

    def test_frozen(self):
        with pytest.raises(Exception):
            NumFabricParameters().eta = 10.0


class TestDgdParameters:
    def test_table2_defaults(self):
        params = DgdParameters()
        assert params.price_update_interval == pytest.approx(16e-6)
        assert params.gain_a == pytest.approx(4e-9 / 1e6)
        assert params.gain_b == pytest.approx(1.2e-10)
        assert params.max_outstanding_bdp == 2.0


class TestRcpStarParameters:
    def test_table2_defaults(self):
        params = RcpStarParameters()
        assert params.rate_update_interval == pytest.approx(16e-6)
        assert params.gain_a == pytest.approx(3.6)
        assert params.gain_b == pytest.approx(1.8)


class TestSimulationParameters:
    def test_topology_defaults(self):
        params = SimulationParameters()
        assert params.num_servers == 128
        assert params.num_leaves == 8
        assert params.num_spines == 4
        assert params.edge_link_rate == pytest.approx(10e9)
        assert params.core_link_rate == pytest.approx(40e9)

    def test_bdp_is_about_200kb(self):
        """The paper states the BDP is 200 KB for 10 Gbps and 16 us RTT."""
        params = SimulationParameters()
        assert params.bandwidth_delay_product_bytes == pytest.approx(20_000, rel=0.01)


def test_default_parameters_covers_all_schemes():
    defaults = default_parameters()
    assert set(defaults) == {"NUMFabric", "DGD", "RCP*", "DCTCP", "pFabric", "simulation"}
    assert isinstance(defaults["NUMFabric"], NumFabricParameters)
    assert isinstance(defaults["DGD"], DgdParameters)
    assert isinstance(defaults["RCP*"], RcpStarParameters)
    assert isinstance(defaults["DCTCP"], DctcpParameters)
    assert isinstance(defaults["pFabric"], PfabricParameters)
    assert isinstance(defaults["simulation"], SimulationParameters)
