"""Tests for the xWI update rules shared by fluid and packet-level engines."""

import math

import pytest

from repro.core.config import NumFabricParameters
from repro.core.utility import LogUtility
from repro.core.xwi import (
    XwiLinkState,
    compute_flow_weight,
    fluid_price_update,
    normalized_residual,
)


class TestComputeFlowWeight:
    def test_weight_is_inverse_marginal(self):
        utility = LogUtility()
        assert compute_flow_weight(utility, path_price=0.5, max_weight=1e12) == pytest.approx(2.0)

    def test_weight_clipped_to_path_capacity(self):
        utility = LogUtility()
        assert compute_flow_weight(utility, path_price=1e-15, max_weight=10e9) == 10e9

    def test_zero_price_gives_max_weight(self):
        assert compute_flow_weight(LogUtility(), path_price=0.0, max_weight=7.0) == 7.0


class TestNormalizedResidual:
    def test_residual_definition(self):
        utility = LogUtility()
        # U'(2) = 0.5; path price 0.3 over 2 links -> (0.5 - 0.3) / 2 = 0.1
        assert normalized_residual(utility, rate=2.0, path_price=0.3, path_length=2) == (
            pytest.approx(0.1)
        )

    def test_zero_at_optimum(self):
        utility = LogUtility()
        rate = 4.0
        residual = normalized_residual(
            utility, rate, path_price=utility.marginal(rate), path_length=3
        )
        assert residual == pytest.approx(0.0)

    def test_path_length_must_be_positive(self):
        with pytest.raises(ValueError):
            normalized_residual(LogUtility(), 1.0, 1.0, 0)


class TestXwiLinkState:
    def test_enqueue_tracks_minimum_residual(self):
        state = XwiLinkState(capacity=10e9)
        state.on_enqueue(0.5)
        state.on_enqueue(-0.2)
        state.on_enqueue(0.1)
        assert state.min_residual == pytest.approx(-0.2)

    def test_dequeue_accumulates_bytes_and_returns_price(self):
        state = XwiLinkState(capacity=10e9, price=0.7)
        assert state.on_dequeue(1500) == pytest.approx(0.7)
        state.on_dequeue(1500)
        assert state.bytes_serviced == 3000

    def test_utilization(self):
        state = XwiLinkState(capacity=10e9)
        interval = 30e-6
        # Fill exactly half the link for one interval.
        state.bytes_serviced = 10e9 * interval / 8 / 2
        assert state.utilization(interval) == pytest.approx(0.5)

    def test_utilization_capped_at_one(self):
        state = XwiLinkState(capacity=1e9)
        state.bytes_serviced = 1e12
        assert state.utilization(30e-6) == 1.0

    def test_price_update_resets_interval_state(self):
        state = XwiLinkState(capacity=10e9)
        state.on_enqueue(0.3)
        state.on_dequeue(1500)
        state.update_price(30e-6)
        assert state.bytes_serviced == 0.0
        assert state.min_residual == math.inf

    def test_fully_utilized_link_converges_to_fixed_price(self):
        """On a saturated link the price converges to U'(x) of the flows."""
        params = NumFabricParameters()
        state = XwiLinkState(capacity=10e9, params=params)
        utility = LogUtility()
        interval = params.price_update_interval
        n_flows, capacity = 4, 10e9
        optimal_price = utility.marginal(capacity / n_flows)
        for _ in range(60):
            rate = capacity / n_flows
            residual = normalized_residual(utility, rate, state.price, path_length=1)
            state.on_enqueue(residual)
            state.bytes_serviced = capacity * interval / 8  # fully utilized
            state.update_price(interval)
        assert state.price == pytest.approx(optimal_price, rel=1e-3)

    def test_idle_link_price_decays_to_zero(self):
        state = XwiLinkState(capacity=10e9, price=1.0)
        for _ in range(200):
            state.update_price(30e-6)
        assert state.price < 1e-6


class TestFluidPriceUpdate:
    def test_matches_link_state_arithmetic(self):
        params = NumFabricParameters()
        state = XwiLinkState(capacity=10e9, params=params, price=0.4)
        state.on_enqueue(0.05)
        state.bytes_serviced = 10e9 * params.price_update_interval / 8  # 100% utilization
        expected = fluid_price_update(0.4, 0.05, 1.0, params)
        assert state.update_price(params.price_update_interval) == pytest.approx(expected)

    def test_price_never_negative(self):
        params = NumFabricParameters()
        price = fluid_price_update(0.1, -10.0, 0.0, params)
        assert price >= 0.0

    def test_infinite_residual_treated_as_zero(self):
        params = NumFabricParameters()
        assert fluid_price_update(0.0, math.inf, 1.0, params) == 0.0
