"""Tests for the Swift rate-control state machine."""

import pytest

from repro.core.config import NumFabricParameters
from repro.core.swift import RateSample, SwiftRateControl


class TestRateSample:
    def test_rate_computation(self):
        sample = RateSample(time=0.0, bytes_acked=1500, inter_packet_time=1.2e-6)
        assert sample.rate == pytest.approx(1500 * 8 / 1.2e-6)

    def test_zero_inter_packet_time(self):
        sample = RateSample(time=0.0, bytes_acked=1500, inter_packet_time=0.0)
        assert sample.rate == 0.0


class TestSwiftRateControl:
    def test_initial_window_is_burst(self):
        control = SwiftRateControl(mtu_bytes=1500)
        assert control.rate_estimate is None
        assert control.window_bytes() == 3 * 1500

    def test_first_sample_sets_estimate(self):
        control = SwiftRateControl()
        rate = control.on_ack(time=1e-6, bytes_acked=1500, inter_packet_time=1.2e-6)
        assert rate == pytest.approx(1500 * 8 / 1.2e-6)

    def test_estimate_converges_to_steady_rate(self):
        """Feeding a constant inter-packet time converges to that rate."""
        control = SwiftRateControl()
        target_rate = 5e9
        inter_packet = 1500 * 8 / target_rate
        time = 0.0
        for _ in range(500):
            time += inter_packet
            control.on_ack(time=time, bytes_acked=1500, inter_packet_time=inter_packet)
        assert control.rate_estimate == pytest.approx(target_rate, rel=1e-3)

    def test_estimate_tracks_bandwidth_change(self):
        control = SwiftRateControl()
        time = 0.0
        for rate in [10e9, 2e9]:
            inter_packet = 1500 * 8 / rate
            for _ in range(1000):
                time += inter_packet
                control.on_ack(time=time, bytes_acked=1500, inter_packet_time=inter_packet)
        assert control.rate_estimate == pytest.approx(2e9, rel=0.01)

    def test_window_is_rate_times_rtt_plus_slack(self):
        params = NumFabricParameters()
        control = SwiftRateControl(params=params)
        rate = 10e9
        inter_packet = 1500 * 8 / rate
        time = 0.0
        for _ in range(2000):
            time += inter_packet
            control.on_ack(time=time, bytes_acked=1500, inter_packet_time=inter_packet)
        expected = rate * (params.baseline_rtt + params.delay_slack) / 8
        assert control.window_bytes() == pytest.approx(expected, rel=0.02)

    def test_window_never_below_one_packet(self):
        control = SwiftRateControl(mtu_bytes=1500)
        control.on_ack(time=1.0, bytes_acked=1500, inter_packet_time=10.0)  # ~1.2 kbps
        assert control.window_bytes() >= 1500
        assert control.window_packets() >= 1

    def test_zero_rate_sample_ignored(self):
        control = SwiftRateControl()
        control.on_ack(time=1.0, bytes_acked=1500, inter_packet_time=1e-6)
        before = control.rate_estimate
        control.on_ack(time=2.0, bytes_acked=1500, inter_packet_time=0.0)
        assert control.rate_estimate == before

    def test_reset_clears_state(self):
        control = SwiftRateControl()
        control.on_ack(time=1.0, bytes_acked=1500, inter_packet_time=1e-6)
        control.reset()
        assert control.rate_estimate is None
        assert control.samples_seen == 0
        assert control.window_bytes() == 3 * control.mtu_bytes
