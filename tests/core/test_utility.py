"""Unit tests for the utility-function library (Table 1)."""

import math

import pytest

from repro.core.bandwidth_function import fig2_flow1
from repro.core.utility import (
    AlphaFairUtility,
    BandwidthFunctionUtility,
    FctUtility,
    LinearUtility,
    LogUtility,
    WeightedAlphaFairUtility,
)


class TestAlphaFairUtility:
    def test_log_limit_at_alpha_one(self):
        utility = AlphaFairUtility(alpha=1.0)
        assert utility.value(math.e) == pytest.approx(1.0)

    def test_value_general_alpha(self):
        utility = AlphaFairUtility(alpha=2.0)
        assert utility.value(4.0) == pytest.approx(4.0 ** (-1.0) / (-1.0))

    def test_marginal_is_power_law(self):
        utility = AlphaFairUtility(alpha=2.0)
        assert utility.marginal(4.0) == pytest.approx(1.0 / 16.0)

    def test_inverse_marginal_roundtrip(self):
        utility = AlphaFairUtility(alpha=0.5)
        for rate in [0.1, 1.0, 7.3, 1e9]:
            assert utility.inverse_marginal(utility.marginal(rate)) == pytest.approx(rate)

    def test_marginal_decreasing(self):
        utility = AlphaFairUtility(alpha=1.5)
        assert utility.marginal(1.0) > utility.marginal(2.0) > utility.marginal(10.0)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            AlphaFairUtility(alpha=-1.0)

    def test_alpha_zero_has_no_inverse_marginal(self):
        utility = AlphaFairUtility(alpha=0.0)
        with pytest.raises(ValueError):
            utility.inverse_marginal(1.0)

    def test_inverse_marginal_clipped(self):
        utility = AlphaFairUtility(alpha=1.0)
        assert utility.inverse_marginal_clipped(1e-30, max_rate=10.0) == 10.0
        assert utility.inverse_marginal_clipped(0.0, max_rate=10.0) == 10.0
        assert utility.inverse_marginal_clipped(1.0, max_rate=10.0) == pytest.approx(1.0)


class TestWeightedAlphaFairUtility:
    def test_weight_scales_inverse_marginal(self):
        light = WeightedAlphaFairUtility(weight=1.0, alpha=1.0)
        heavy = WeightedAlphaFairUtility(weight=4.0, alpha=1.0)
        price = 2.0
        assert heavy.inverse_marginal(price) == pytest.approx(4.0 * light.inverse_marginal(price))

    def test_roundtrip(self):
        utility = WeightedAlphaFairUtility(weight=3.0, alpha=2.0)
        for rate in [0.5, 2.0, 100.0]:
            assert utility.inverse_marginal(utility.marginal(rate)) == pytest.approx(rate)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WeightedAlphaFairUtility(weight=0.0, alpha=1.0)
        with pytest.raises(ValueError):
            WeightedAlphaFairUtility(weight=1.0, alpha=0.0)


class TestLogUtility:
    def test_matches_weighted_alpha_one(self):
        log_u = LogUtility(weight=2.0)
        waf = WeightedAlphaFairUtility(weight=2.0, alpha=1.0)
        for rate in [0.25, 1.0, 9.0]:
            assert log_u.marginal(rate) == pytest.approx(waf.marginal(rate))

    def test_inverse_marginal(self):
        assert LogUtility(weight=5.0).inverse_marginal(2.5) == pytest.approx(2.0)


class TestLinearUtility:
    def test_value_and_marginal(self):
        utility = LinearUtility(weight=3.0)
        assert utility.value(2.0) == pytest.approx(6.0)
        assert utility.marginal(123.0) == pytest.approx(3.0)

    def test_inverse_marginal_undefined(self):
        with pytest.raises(ValueError):
            LinearUtility(weight=1.0).inverse_marginal(1.0)


class TestFctUtility:
    def test_smaller_flows_have_larger_marginal(self):
        """The FCT utility prioritizes short flows (Shortest-Flow-First)."""
        short = FctUtility(flow_size=10e3)
        long = FctUtility(flow_size=10e6)
        rate = 1e9
        assert short.marginal(rate) > long.marginal(rate)

    def test_roundtrip(self):
        utility = FctUtility(flow_size=1e6, epsilon=0.125)
        for rate in [1e6, 1e9, 5e9]:
            assert utility.inverse_marginal(utility.marginal(rate)) == pytest.approx(rate, rel=1e-6)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FctUtility(flow_size=0.0)
        with pytest.raises(ValueError):
            FctUtility(flow_size=1.0, epsilon=1.5)


class TestBandwidthFunctionUtility:
    def test_marginal_matches_inverse_bandwidth_function(self):
        bwf = fig2_flow1()
        utility = BandwidthFunctionUtility(bwf, alpha=5.0)
        rate = 5e9  # halfway up the first segment -> fair share 1.0
        assert utility.marginal(rate) == pytest.approx(1.0, rel=1e-6)

    def test_inverse_marginal_roundtrip(self):
        bwf = fig2_flow1()
        utility = BandwidthFunctionUtility(bwf, alpha=5.0)
        for rate in [1e9, 5e9, 12e9]:
            assert utility.inverse_marginal(utility.marginal(rate)) == pytest.approx(rate, rel=1e-6)

    def test_value_is_increasing(self):
        utility = BandwidthFunctionUtility(fig2_flow1(), alpha=5.0)
        values = [utility.value(rate) for rate in [1e9, 2e9, 5e9, 10e9]]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            BandwidthFunctionUtility(fig2_flow1(), alpha=0.0)


class TestConcavityInvariants:
    """All utilities must be increasing and concave (decreasing marginal)."""

    utilities = [
        AlphaFairUtility(alpha=0.5),
        AlphaFairUtility(alpha=1.0),
        AlphaFairUtility(alpha=2.0),
        WeightedAlphaFairUtility(weight=2.0, alpha=1.0),
        LogUtility(weight=3.0),
        FctUtility(flow_size=1e6),
        BandwidthFunctionUtility(fig2_flow1(), alpha=5.0),
    ]

    @pytest.mark.parametrize("utility", utilities, ids=lambda u: repr(u))
    def test_value_increasing(self, utility):
        rates = [1e6, 1e7, 1e8, 1e9, 5e9]
        values = [utility.value(r) for r in rates]
        assert all(b > a for a, b in zip(values, values[1:]))

    @pytest.mark.parametrize("utility", utilities, ids=lambda u: repr(u))
    def test_marginal_nonincreasing(self, utility):
        rates = [1e6, 1e7, 1e8, 1e9, 5e9]
        marginals = [utility.marginal(r) for r in rates]
        assert all(b <= a + 1e-12 for a, b in zip(marginals, marginals[1:]))


class TestArrayAwareMethods:
    """The array paths must agree elementwise with the scalar paths."""

    RATES = [0.0, 1e-35, 1e3, 5e9, 1e11]
    PRICES = [-1.0, 0.0, 1e-35, 1e-9, 0.5, 3.0]

    def utilities(self):
        return [
            LogUtility(weight=2.0),
            AlphaFairUtility(alpha=0.5),
            AlphaFairUtility(alpha=2.0),
            WeightedAlphaFairUtility(weight=3.0, alpha=1.5),
            FctUtility(flow_size=1e6),
            BandwidthFunctionUtility(fig2_flow1()),
        ]

    def test_marginal_matches_scalar_elementwise(self):
        import numpy as np

        rates = np.array(self.RATES)
        for utility in self.utilities():
            expected = [utility.marginal(r) for r in self.RATES]
            assert utility.marginal(rates).tolist() == pytest.approx(expected)

    def test_inverse_marginal_matches_scalar_elementwise(self):
        import numpy as np

        prices = np.array(self.PRICES)
        for utility in self.utilities():
            expected = [utility.inverse_marginal(p) for p in self.PRICES]
            assert utility.inverse_marginal(prices).tolist() == pytest.approx(expected)

    def test_inverse_marginal_clipped_matches_scalar_elementwise(self):
        import numpy as np

        prices = np.array(self.PRICES)
        max_rate = 7e9
        for utility in self.utilities():
            expected = [utility.inverse_marginal_clipped(p, max_rate) for p in self.PRICES]
            result = utility.inverse_marginal_clipped(prices, max_rate)
            assert result.tolist() == pytest.approx(expected)

    def test_clipped_all_nonpositive_prices_returns_max_rates(self):
        import numpy as np

        prices = np.array([-1.0, 0.0, -5.0])
        result = LogUtility().inverse_marginal_clipped(prices, 4e9)
        assert result.tolist() == [4e9, 4e9, 4e9]
        # LinearUtility would raise on any positive price, but an
        # all-nonpositive vector must short-circuit exactly like the scalar.
        assert LinearUtility().inverse_marginal_clipped(prices, 4e9).tolist() == [4e9] * 3

    def test_linear_utility_array_marginal_is_constant(self):
        import numpy as np

        utility = LinearUtility(weight=2.5)
        assert utility.marginal(np.array([1.0, 2.0, 3.0])).tolist() == [2.5, 2.5, 2.5]
        with pytest.raises(ValueError):
            utility.inverse_marginal(np.array([0.5]))
