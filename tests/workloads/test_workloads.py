"""Tests for flow-size distributions and workload generators."""

import random

import pytest

from repro.workloads.distributions import (
    EmpiricalFlowSizeDistribution,
    ParetoFlowSizeDistribution,
    UniformFlowSizeDistribution,
    enterprise_distribution,
    web_search_distribution,
)
from repro.workloads.permutation import PermutationTraffic, permutation_pairs
from repro.workloads.poisson import PoissonTrafficGenerator
from repro.workloads.semidynamic import SemiDynamicScenario, arrivals_from_scenario


class TestEmpiricalDistribution:
    def test_quantiles_monotone(self):
        dist = web_search_distribution()
        values = [dist.quantile(u) for u in [0.1, 0.3, 0.5, 0.7, 0.9, 0.99]]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_websearch_statistics_match_paper(self):
        """About 50% of web-search flows are below 100 KB (Sec. 6.1)."""
        dist = web_search_distribution()
        assert 0.4 <= dist.cdf(100_000) <= 0.65
        assert dist.cdf(1_000_000) <= 0.85

    def test_enterprise_statistics_match_paper(self):
        """95% of enterprise flows are smaller than 10 KB (Sec. 6.1)."""
        dist = enterprise_distribution()
        assert dist.cdf(10_000) == pytest.approx(0.95, abs=0.02)

    def test_sampling_respects_bounds(self):
        dist = web_search_distribution()
        rng = random.Random(0)
        samples = [dist.sample(rng) for _ in range(500)]
        assert min(samples) >= 1
        assert max(samples) <= 30_000_000

    def test_mean_is_heavy_tail_dominated(self):
        dist = web_search_distribution()
        assert dist.mean() > 500_000  # much larger than the median (~50 KB)

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalFlowSizeDistribution([(1, 0.5)])
        with pytest.raises(ValueError):
            EmpiricalFlowSizeDistribution([(10, 0.5), (5, 1.0)])
        with pytest.raises(ValueError):
            EmpiricalFlowSizeDistribution([(1, 0.5), (10, 0.9)])


class TestOtherDistributions:
    def test_pareto_bounds(self):
        dist = ParetoFlowSizeDistribution(shape=1.2, minimum=1000, maximum=1_000_000)
        rng = random.Random(1)
        samples = [dist.sample(rng) for _ in range(300)]
        assert min(samples) >= 1000 * 0.99
        assert max(samples) <= 1_000_000 * 1.01
        assert dist.mean() > 1000

    def test_uniform(self):
        dist = UniformFlowSizeDistribution(100, 200)
        rng = random.Random(2)
        assert all(100 <= dist.sample(rng) <= 200 for _ in range(100))
        assert dist.mean() == 150


class TestPoissonGenerator:
    def test_reproducible_with_seed(self):
        make = lambda: PoissonTrafficGenerator(16, web_search_distribution(), load=0.5, seed=3)
        assert make().generate(max_flows=20) == make().generate(max_flows=20)

    def test_no_self_traffic(self):
        generator = PoissonTrafficGenerator(4, web_search_distribution(), load=0.5, seed=4)
        assert all(a.source != a.destination for a in generator.generate(max_flows=200))

    def test_arrival_rate_scales_with_load(self):
        low = PoissonTrafficGenerator(16, web_search_distribution(), load=0.2, seed=5)
        high = PoissonTrafficGenerator(16, web_search_distribution(), load=0.8, seed=5)
        assert high.arrival_rate == pytest.approx(4 * low.arrival_rate, rel=1e-6)

    def test_duration_bound(self):
        generator = PoissonTrafficGenerator(16, web_search_distribution(), load=0.5, seed=6)
        arrivals = generator.generate(duration=1e-3)
        assert all(a.time <= 1e-3 for a in arrivals)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonTrafficGenerator(1, web_search_distribution(), load=0.5)
        with pytest.raises(ValueError):
            PoissonTrafficGenerator(4, web_search_distribution(), load=1.5)


class TestSemiDynamicScenario:
    def test_event_sizes_and_bounds(self):
        scenario = SemiDynamicScenario(num_paths=300, flows_per_event=50,
                                       min_active=100, max_active=200, seed=1)
        scenario.initialize()
        for event in scenario.events(20):
            assert len(event.path_ids) == 50
            assert 100 <= len(event.active_after) <= 200

    def test_start_adds_and_stop_removes(self):
        scenario = SemiDynamicScenario(num_paths=300, flows_per_event=50,
                                       min_active=100, max_active=200, seed=2)
        before = set(scenario.initialize())
        event = scenario.next_event()
        after = set(event.active_after)
        if event.kind == "start":
            assert after == before | set(event.path_ids)
        else:
            assert after == before - set(event.path_ids)

    def test_reproducible(self):
        def run():
            scenario = SemiDynamicScenario(seed=42, num_paths=100, flows_per_event=10,
                                           min_active=30, max_active=60)
            scenario.initialize()
            return [e.path_ids for e in scenario.events(5)]

        assert run() == run()

    def test_paths_have_distinct_endpoints(self):
        scenario = SemiDynamicScenario(seed=3)
        assert all(p.source != p.destination for p in scenario.paths)


class TestPermutationTraffic:
    def test_pairs_are_a_permutation(self):
        pairs = permutation_pairs(64, seed=1)
        senders = [s for s, _ in pairs]
        receivers = [r for _, r in pairs]
        assert senders == list(range(32))
        assert sorted(receivers) == list(range(32, 64))

    def test_subflow_counts(self):
        traffic = PermutationTraffic(num_servers=32, num_spines=4, seed=1)
        specs = traffic.subflows(4)
        assert len(specs) == 16 * 4
        assert all(0 <= s.spine < 4 for s in specs)

    def test_odd_server_count_rejected(self):
        with pytest.raises(ValueError):
            permutation_pairs(7)


class TestArrivalsFromScenario:
    def _scenario(self):
        return SemiDynamicScenario(
            num_servers=16, num_paths=40, flows_per_event=5,
            min_active=10, max_active=20, num_spines=2, seed=4,
        )

    def test_initial_set_arrives_at_time_zero(self):
        arrivals = arrivals_from_scenario(
            self._scenario(), UniformFlowSizeDistribution(1_000, 10_000),
            event_interval=1e-3, num_events=6, seed=1,
        )
        initial = [a for a in arrivals if a.time == 0.0]
        assert len(initial) == 15  # (min_active + max_active) // 2

    def test_start_events_become_sized_batches(self):
        scenario = self._scenario()
        arrivals = arrivals_from_scenario(
            scenario, UniformFlowSizeDistribution(1_000, 10_000),
            event_interval=1e-3, num_events=10, seed=1,
        )
        times = sorted({a.time for a in arrivals if a.time > 0.0})
        # Every non-initial batch lands on the event grid with 5 flows each.
        for t in times:
            assert t / 1e-3 == pytest.approx(round(t / 1e-3))
            assert len([a for a in arrivals if a.time == t]) == 5
        assert all(a.size_bytes >= 1_000 for a in arrivals)
        assert all(a.source != a.destination for a in arrivals)

    def test_flow_ids_unique_even_across_path_restarts(self):
        arrivals = arrivals_from_scenario(
            self._scenario(), UniformFlowSizeDistribution(1_000, 10_000),
            event_interval=1e-3, num_events=30, seed=1,
        )
        ids = [a.flow_id for a in arrivals]
        assert len(ids) == len(set(ids))

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            arrivals_from_scenario(
                self._scenario(), UniformFlowSizeDistribution(1_000, 10_000),
                event_interval=0.0, num_events=1,
            )

    def test_drives_flow_level_simulation(self):
        from repro.experiments.dynamic_fluid import FlowLevelSimulation
        from repro.fluid.network import FluidNetwork

        arrivals = arrivals_from_scenario(
            self._scenario(), UniformFlowSizeDistribution(1_000, 5_000),
            event_interval=5e-3, num_events=4, seed=2,
        )
        network = FluidNetwork({"bottleneck": 1e9})

        class EqualShare:
            def on_flow_set_changed(self, network):
                self._rates = None

            def rates(self, network, dt):
                flows = network.flows
                share = 1e9 / len(flows) if flows else 0.0
                return {flow.flow_id: share for flow in flows}

        simulation = FlowLevelSimulation(
            network, lambda a: ("bottleneck",), EqualShare()
        )
        completed = simulation.run(arrivals)
        assert len(completed) == len(arrivals)
