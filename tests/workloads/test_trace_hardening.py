"""Malformed-trace handling: every error names the offending line."""

import pytest

from repro.workloads.trace import arrivals_from_trace, trace_from_arrivals

CSV_HEADER = "flow_id,time,source,destination,size_bytes"


class TestCsvHardening:
    def test_good_trace_still_parses(self):
        arrivals = arrivals_from_trace(f"{CSV_HEADER}\n0,0.0,0,1,1000\n1,0.5,2,3,2000\n")
        assert [a.flow_id for a in arrivals] == [0, 1]

    def test_header_missing_column_names_line(self):
        with pytest.raises(ValueError, match=r"trace line 1: CSV header missing"):
            arrivals_from_trace("flow_id,time,source\n0,0.0,0\n")

    def test_wrong_column_count_names_line(self):
        trace = f"{CSV_HEADER}\n0,0.0,0,1,1000\n1,0.5,2,3\n"
        with pytest.raises(ValueError, match=r"trace line 3: expected 5 column"):
            arrivals_from_trace(trace)

    def test_non_numeric_value_names_line(self):
        trace = f"# comment\n{CSV_HEADER}\n0,0.0,0,1,1000\n1,abc,2,3,2000\n"
        # Comments count toward line numbers: the bad row is physical line 4.
        with pytest.raises(ValueError, match=r"trace line 4: malformed value"):
            arrivals_from_trace(trace)

    def test_semantic_errors_name_line(self):
        with pytest.raises(ValueError, match=r"trace line 2: .*non-negative"):
            arrivals_from_trace(f"{CSV_HEADER}\n0,-1.0,0,1,1000\n")
        with pytest.raises(ValueError, match=r"trace line 2: .*must be positive"):
            arrivals_from_trace(f"{CSV_HEADER}\n0,0.0,0,1,0\n")
        with pytest.raises(ValueError, match=r"trace line 3: .*must differ"):
            arrivals_from_trace(f"{CSV_HEADER}\n0,0.0,0,1,10\n1,0.5,2,2,10\n")

    def test_blank_lines_do_not_shift_numbering(self):
        trace = f"{CSV_HEADER}\n\n\n0,0.0,0,1,1000\n1,bad,2,3,2000\n"
        with pytest.raises(ValueError, match=r"trace line 5"):
            arrivals_from_trace(trace)


class TestJsonlHardening:
    def test_good_trace_still_parses(self):
        trace = (
            '{"time": 0.0, "source": 0, "destination": 1, "size_bytes": 1000}\n'
            '{"time": 0.5, "source": 2, "destination": 3, "size_bytes": 2000}\n'
        )
        assert len(arrivals_from_trace(trace)) == 2

    def test_invalid_json_names_line(self):
        trace = (
            '{"time": 0.0, "source": 0, "destination": 1, "size_bytes": 1000}\n'
            '{"time": 0.5, "source": 2 BROKEN\n'
        )
        with pytest.raises(ValueError, match=r"trace line 2: invalid JSON"):
            arrivals_from_trace(trace)

    def test_non_object_line_rejected(self):
        trace = '{"time": 0.0, "source": 0, "destination": 1, "size_bytes": 1}\n[1, 2]\n'
        with pytest.raises(ValueError, match=r"trace line 2: expected a JSON object"):
            arrivals_from_trace(trace)

    def test_missing_field_names_line(self):
        trace = '{"time": 0.0, "source": 0, "destination": 1}\n'
        with pytest.raises(ValueError, match=r"trace line 1: missing field.*size_bytes"):
            arrivals_from_trace(trace)


class TestRoundTrip:
    def test_export_then_reimport_is_identical(self):
        original = arrivals_from_trace(f"{CSV_HEADER}\n0,0.25,0,1,1000\n1,0.125,2,3,2000\n")
        assert arrivals_from_trace(trace_from_arrivals(original)) == original
