"""Streaming trace ingestion: lazy iteration, sort enforcement, CSV export."""

import pytest

from repro.workloads.trace import (
    arrivals_from_trace,
    iter_arrivals_from_trace,
    write_trace,
)

CSV_HEADER = "flow_id,time,source,destination,size_bytes"
SORTED_TRACE = f"{CSV_HEADER}\n0,0.0,0,1,1000\n1,0.5,2,3,2000\n2,0.75,1,2,512\n"
UNSORTED_TRACE = f"{CSV_HEADER}\n0,0.5,0,1,1000\n1,0.25,2,3,2000\n"


class TestIterArrivals:
    def test_matches_materializing_parser(self):
        assert list(iter_arrivals_from_trace(SORTED_TRACE)) == arrivals_from_trace(
            SORTED_TRACE
        )

    def test_file_source_matches_inline(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(SORTED_TRACE)
        assert list(iter_arrivals_from_trace(path)) == arrivals_from_trace(SORTED_TRACE)

    def test_is_lazy(self):
        """The iterator must not consume its source up front."""
        consumed = []

        def lines():
            for i, line in enumerate(SORTED_TRACE.splitlines()):
                consumed.append(i)
                yield line

        iterator = iter_arrivals_from_trace(lines())
        assert consumed == []  # nothing touched before first next()
        first = next(iterator)
        assert first.flow_id == 0
        assert len(consumed) < 4  # header + ~one record, not the whole trace

    def test_out_of_order_raises_with_line_number(self):
        iterator = iter_arrivals_from_trace(UNSORTED_TRACE)
        next(iterator)
        with pytest.raises(ValueError, match=r"trace line 3: .*out of order"):
            next(iterator)

    def test_out_of_order_allowed_when_unchecked(self):
        arrivals = list(iter_arrivals_from_trace(UNSORTED_TRACE, require_sorted=False))
        assert [a.time for a in arrivals] == [0.5, 0.25]

    def test_materializing_parser_still_sorts(self):
        arrivals = arrivals_from_trace(UNSORTED_TRACE)
        assert [a.time for a in arrivals] == [0.25, 0.5]

    def test_jsonl_streams_too(self):
        trace = (
            '{"time": 0.0, "source": 0, "destination": 1, "size_bytes": 1000}\n'
            '{"time": 0.5, "source": 2, "destination": 3, "size_bytes": 2000}\n'
        )
        assert list(iter_arrivals_from_trace(trace)) == arrivals_from_trace(trace)


class TestWriteTrace:
    def test_round_trip(self, tmp_path):
        original = arrivals_from_trace(SORTED_TRACE)
        path = tmp_path / "out.csv"
        assert write_trace(original, path) == len(original)
        assert arrivals_from_trace(path) == original

    def test_accepts_generator_without_materializing(self, tmp_path):
        path = tmp_path / "gen.csv"
        count = write_trace(iter_arrivals_from_trace(SORTED_TRACE), path)
        assert count == 3
        assert len(arrivals_from_trace(path)) == 3

    def test_times_survive_repr_precision(self, tmp_path):
        trace = f"{CSV_HEADER}\n0,0.1,0,1,1000\n1,0.30000000000000004,2,3,2000\n"
        original = arrivals_from_trace(trace)
        path = tmp_path / "precise.csv"
        write_trace(original, path)
        assert arrivals_from_trace(path) == original
