"""Content addressing: canonical spec hashing and the on-disk result cache."""

import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.results import ExperimentResult
from repro.scenarios.catalog import get_scenario
from repro.sweep import (
    CACHE_VERSION,
    ResultCache,
    canonicalize,
    decode_result,
    encode_result,
    spec_fingerprint,
    task_key,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestCanonicalize:
    def test_dict_key_order_is_irrelevant(self):
        assert canonicalize({"a": 1, "b": 2}) == canonicalize({"b": 2, "a": 1})

    def test_floats_hash_by_repr(self):
        assert canonicalize(0.1) == ["f", "0.1"]
        assert canonicalize(0.1) != canonicalize(0.2)

    def test_sets_are_order_independent(self):
        assert canonicalize({3, 1, 2}) == canonicalize({2, 3, 1})

    def test_memory_addresses_are_rejected(self):
        # A bare object has no __dict__, no __slots__ and a repr that embeds
        # its address -- the one shape that must never reach a cache key.
        with pytest.raises(ValueError, match="memory address"):
            canonicalize(object())


class TestSpecHashing:
    def test_spec_pickle_round_trip(self):
        # Satellite requirement: specs must survive the trip to a spawn-ed
        # worker bit-identically (same fingerprint on the far side).
        spec = get_scenario("fig4/single-link-churn")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert spec_fingerprint(clone) == spec_fingerprint(spec)

    def test_every_registered_scenario_pickles(self):
        from repro.scenarios.catalog import list_scenarios

        for entry in list_scenarios():
            spec = get_scenario(entry.name)
            clone = pickle.loads(pickle.dumps(spec))
            assert spec_fingerprint(clone) == spec_fingerprint(spec), entry.name

    def test_using_derivative_hashes_differently(self):
        spec = get_scenario("fig4/single-link-churn")
        derived = spec.using(seed=(spec.seed or 0) + 1)
        assert task_key(spec, code="x") != task_key(derived, code="x")
        assert task_key(spec, code="x") != task_key(spec, seed=99, code="x")

    def test_engine_and_code_feed_the_key(self):
        spec = get_scenario("fig4/single-link-churn")
        assert task_key(spec, "fluid", code="x") != task_key(spec, "flow", code="x")
        assert task_key(spec, code="x") != task_key(spec, code="y")

    def test_key_stable_across_processes(self):
        # The whole point of content addressing: an independent interpreter
        # computes the identical key for the identical cell.
        spec = get_scenario("fig4/single-link-churn")
        local = task_key(spec, code="fixed")
        script = (
            "from repro.scenarios.catalog import get_scenario\n"
            "from repro.sweep import task_key\n"
            "print(task_key(get_scenario('fig4/single-link-churn'), code='fixed'))\n"
        )
        remote = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        ).stdout.strip()
        assert remote == local


class TestResultCodec:
    def test_round_trip(self):
        result = ExperimentResult(experiment_id="x", title="t", notes="n")
        result.add_row(a=1, b=2.5)
        result.artifacts["final_rates"] = {"f": 1.0}
        clone = decode_result(encode_result(result))
        assert clone.rows == result.rows
        assert clone.artifacts["final_rates"] == {"f": 1.0}

    def test_unpicklable_artifacts_are_dropped_and_recorded(self):
        result = ExperimentResult(experiment_id="x", title="t")
        result.artifacts["ok"] = [1, 2]
        result.artifacts["network"] = lambda: None  # unpicklable stand-in
        payload = encode_result(result)
        assert "network" not in payload["artifacts"]
        assert payload["dropped_artifacts"] == ("network",)
        clone = decode_result(payload)
        assert clone.artifacts["ok"] == [1, 2]
        assert clone.artifacts["dropped_artifacts"] == ("network",)


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"rows": [1]})
        assert ("ab" * 32) in cache
        assert cache.get("ab" * 32)["rows"] == [1]
        assert len(cache) == 1

    def test_miss_on_absent_torn_or_skewed_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        assert cache.get(key) is None
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"torn write, not a pickle")
        assert cache.get(key) is None
        cache.put(key, {"version": CACHE_VERSION - 1})
        # put() stamps the current version, so poison the version by hand.
        payload = pickle.loads(path.read_bytes())
        payload["version"] = CACHE_VERSION - 1
        path.write_bytes(pickle.dumps(payload))
        assert cache.get(key) is None

    def test_entry_bound_to_its_key(self, tmp_path):
        # A mis-filed entry (manual copy, collision) is treated as a miss.
        cache = ResultCache(tmp_path)
        key_a, key_b = "aa" * 32, "bb" * 32
        cache.put(key_a, {"rows": []})
        target = cache.path_for(key_b)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(cache.path_for(key_a).read_bytes())
        assert cache.get(key_b) is None


def _rewrite(cache, key, **overrides):
    """Edit a stored payload in place (simulating entries from another era)."""
    path = cache.path_for(key)
    payload = pickle.loads(path.read_bytes())
    payload.update(overrides)
    path.write_bytes(pickle.dumps(payload))


class TestCacheGC:
    def test_stale_code_entries_are_swept(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aa" * 32, {"rows": [1]})
        cache.put("bb" * 32, {"rows": [2]})
        _rewrite(cache, "bb" * 32, code="fingerprint-of-deleted-code")
        report = cache.gc()
        assert report["scanned"] == 2
        assert report["kept"] == 1
        assert report["stale_code"] == 1
        assert cache.get("aa" * 32) is not None
        assert not cache.path_for("bb" * 32).exists()

    def test_age_cutoff_only_applies_when_asked(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aa" * 32, {"rows": [1]})
        cache.put("bb" * 32, {"rows": [2]})
        ten_days = 10 * 86400.0
        _rewrite(cache, "bb" * 32, written_at=__import__("time").time() - ten_days)
        assert cache.gc(dry_run=True)["expired"] == 0  # no cutoff, no expiry
        report = cache.gc(max_age_days=5)
        assert report["expired"] == 1
        assert report["kept"] == 1
        assert not cache.path_for("bb" * 32).exists()

    def test_torn_entries_are_tolerated_and_swept(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aa" * 32, {"rows": [1]})
        torn = cache.path_for("cc" * 32)
        torn.parent.mkdir(parents=True, exist_ok=True)
        torn.write_bytes(b"half a pickle, killed mid-wr")
        skewed = cache.path_for("dd" * 32)
        skewed.parent.mkdir(parents=True, exist_ok=True)
        skewed.write_bytes(pickle.dumps({"version": CACHE_VERSION + 1}))
        report = cache.gc()  # must not raise on either
        assert report["torn"] == 2
        assert report["kept"] == 1
        assert not torn.exists() and not skewed.exists()

    def test_dry_run_deletes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aa" * 32, {"rows": [1]})
        _rewrite(cache, "aa" * 32, code="stale")
        report = cache.gc(dry_run=True)
        assert report["dry_run"] and report["stale_code"] == 1
        assert len(report["deleted"]) == 1
        assert cache.path_for("aa" * 32).exists()  # still on disk

    def test_old_tmp_spills_are_swept(self, tmp_path):
        import time as _time

        cache = ResultCache(tmp_path)
        cache.put("aa" * 32, {"rows": [1]})
        spill = cache.path_for("aa" * 32).parent / ".deadbeef.12345.tmp"
        spill.write_bytes(b"abandoned mkstemp spill")
        ancient = _time.time() - 7200.0
        os.utime(spill, (ancient, ancient))
        report = cache.gc()
        assert report["tmp"] == 1
        assert not spill.exists()
        assert report["kept"] == 1


class TestCacheGCCli:
    def test_sweep_gc_dry_run_then_delete(self, tmp_path, capsys):
        from repro.__main__ import main

        cache = ResultCache(tmp_path)
        cache.put("aa" * 32, {"rows": [1]})
        cache.put("bb" * 32, {"rows": [2]})
        _rewrite(cache, "bb" * 32, code="stale")

        assert main(["sweep", "--gc", "--cache-dir", str(tmp_path), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "stale_code=1" in out and "would delete 1 file(s)" in out
        assert cache.path_for("bb" * 32).exists()

        assert main(["sweep", "--gc", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "deleted 1 file(s)" in out
        assert not cache.path_for("bb" * 32).exists()
        assert cache.get("aa" * 32) is not None

    def test_sweep_without_expression_or_gc_is_an_error(self, capsys):
        from repro.__main__ import main

        assert main(["sweep"]) == 2
        assert "sweep expression is required" in capsys.readouterr().err
