"""Content addressing: canonical spec hashing and the on-disk result cache."""

import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.results import ExperimentResult
from repro.scenarios.catalog import get_scenario
from repro.sweep import (
    CACHE_VERSION,
    ResultCache,
    canonicalize,
    decode_result,
    encode_result,
    spec_fingerprint,
    task_key,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestCanonicalize:
    def test_dict_key_order_is_irrelevant(self):
        assert canonicalize({"a": 1, "b": 2}) == canonicalize({"b": 2, "a": 1})

    def test_floats_hash_by_repr(self):
        assert canonicalize(0.1) == ["f", "0.1"]
        assert canonicalize(0.1) != canonicalize(0.2)

    def test_sets_are_order_independent(self):
        assert canonicalize({3, 1, 2}) == canonicalize({2, 3, 1})

    def test_memory_addresses_are_rejected(self):
        # A bare object has no __dict__, no __slots__ and a repr that embeds
        # its address -- the one shape that must never reach a cache key.
        with pytest.raises(ValueError, match="memory address"):
            canonicalize(object())


class TestSpecHashing:
    def test_spec_pickle_round_trip(self):
        # Satellite requirement: specs must survive the trip to a spawn-ed
        # worker bit-identically (same fingerprint on the far side).
        spec = get_scenario("fig4/single-link-churn")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert spec_fingerprint(clone) == spec_fingerprint(spec)

    def test_every_registered_scenario_pickles(self):
        from repro.scenarios.catalog import list_scenarios

        for entry in list_scenarios():
            spec = get_scenario(entry.name)
            clone = pickle.loads(pickle.dumps(spec))
            assert spec_fingerprint(clone) == spec_fingerprint(spec), entry.name

    def test_using_derivative_hashes_differently(self):
        spec = get_scenario("fig4/single-link-churn")
        derived = spec.using(seed=(spec.seed or 0) + 1)
        assert task_key(spec, code="x") != task_key(derived, code="x")
        assert task_key(spec, code="x") != task_key(spec, seed=99, code="x")

    def test_engine_and_code_feed_the_key(self):
        spec = get_scenario("fig4/single-link-churn")
        assert task_key(spec, "fluid", code="x") != task_key(spec, "flow", code="x")
        assert task_key(spec, code="x") != task_key(spec, code="y")

    def test_key_stable_across_processes(self):
        # The whole point of content addressing: an independent interpreter
        # computes the identical key for the identical cell.
        spec = get_scenario("fig4/single-link-churn")
        local = task_key(spec, code="fixed")
        script = (
            "from repro.scenarios.catalog import get_scenario\n"
            "from repro.sweep import task_key\n"
            "print(task_key(get_scenario('fig4/single-link-churn'), code='fixed'))\n"
        )
        remote = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        ).stdout.strip()
        assert remote == local


class TestResultCodec:
    def test_round_trip(self):
        result = ExperimentResult(experiment_id="x", title="t", notes="n")
        result.add_row(a=1, b=2.5)
        result.artifacts["final_rates"] = {"f": 1.0}
        clone = decode_result(encode_result(result))
        assert clone.rows == result.rows
        assert clone.artifacts["final_rates"] == {"f": 1.0}

    def test_unpicklable_artifacts_are_dropped_and_recorded(self):
        result = ExperimentResult(experiment_id="x", title="t")
        result.artifacts["ok"] = [1, 2]
        result.artifacts["network"] = lambda: None  # unpicklable stand-in
        payload = encode_result(result)
        assert "network" not in payload["artifacts"]
        assert payload["dropped_artifacts"] == ("network",)
        clone = decode_result(payload)
        assert clone.artifacts["ok"] == [1, 2]
        assert clone.artifacts["dropped_artifacts"] == ("network",)


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"rows": [1]})
        assert ("ab" * 32) in cache
        assert cache.get("ab" * 32)["rows"] == [1]
        assert len(cache) == 1

    def test_miss_on_absent_torn_or_skewed_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        assert cache.get(key) is None
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"torn write, not a pickle")
        assert cache.get(key) is None
        cache.put(key, {"version": CACHE_VERSION - 1})
        # put() stamps the current version, so poison the version by hand.
        payload = pickle.loads(path.read_bytes())
        payload["version"] = CACHE_VERSION - 1
        path.write_bytes(pickle.dumps(payload))
        assert cache.get(key) is None

    def test_entry_bound_to_its_key(self, tmp_path):
        # A mis-filed entry (manual copy, collision) is treated as a miss.
        cache = ResultCache(tmp_path)
        key_a, key_b = "aa" * 32, "bb" * 32
        cache.put(key_a, {"rows": []})
        target = cache.path_for(key_b)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(cache.path_for(key_a).read_bytes())
        assert cache.get(key_b) is None
