"""Chaos soak: SIGKILL agents at random instants; the aggregate must not move.

A loopback remote sweep runs while a seeded killer SIGKILLs a random agent
(mid-cell, mid-ack or mid-fetch -- wherever the timer lands) and respawns
it on the same port with the same cache directory.  The final aggregate
must be bit-identical to the serial reference, and the per-host run
tallies must respect the retry bound: no cell starts more than
``max_attempts + 1`` times on any one host.
"""

import os
import random
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.sweep import (
    ResultCache,
    RetryPolicy,
    expand_grid,
    parse_sweep,
    run_sweep,
)

pytestmark = pytest.mark.sweep_smoke

REPO_ROOT = Path(__file__).resolve().parents[2]
EXPRESSION = "fig4/single-link-churn scheme=numfabric,dctcp seed=0..1"
ENV = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
RETRY = RetryPolicy(max_attempts=3, base_delay=0.05, max_delay=0.3)
KILL_ROUNDS = 2


def spawn_agent(bind, cache_dir):
    """One agent subprocess at a (possibly fixed) bind; returns (proc, host)."""
    proc = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-m",
            "repro",
            "agent",
            bind,
            "--workers",
            "1",
            "--cache-dir",
            str(cache_dir),
            "--heartbeat",
            "0.2",
            "--fault",
            "slow_ack_on=all",
            "--fault",
            "slow_ack_seconds=0.3",
            "--quiet",
        ],
        cwd=REPO_ROOT,
        env=ENV,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if "listening on" in line or proc.poll() is not None:
            break
    assert "listening on" in line, f"agent failed to start: {line!r}"
    return proc, line.rsplit("listening on", 1)[1].strip()


class TestRemoteChaos:
    def test_random_agent_kills_never_change_the_aggregate(self, tmp_path):
        serial_reference = run_sweep(make_tasks(), mode="serial").aggregate("ref").rows
        procs, hosts = [], []
        for i in range(2):
            proc, host = spawn_agent("127.0.0.1:0", tmp_path / f"agent-{i}")
            procs.append(proc)
            hosts.append(host)

        box = {}

        def drive():
            box["report"] = run_sweep(
                make_tasks(),
                mode="remote",
                hosts=hosts,
                cache=ResultCache(tmp_path / "driver"),
                heartbeat_interval=0.2,
                stall_timeout=2.0,
                retry=RETRY,
                connect_retry=RetryPolicy(max_attempts=8, base_delay=0.2, max_delay=1.0),
            )

        driver = threading.Thread(target=drive, daemon=True)
        driver.start()
        rng = random.Random(0xC4A05)
        try:
            for _ in range(KILL_ROUNDS):
                time.sleep(rng.uniform(0.4, 1.0))
                if not driver.is_alive():
                    break
                victim = rng.randrange(len(procs))
                procs[victim].send_signal(signal.SIGKILL)
                procs[victim].wait(timeout=30)
                # Respawn on the same port with the same cache: the replacement
                # answers already-computed cells straight from disk.
                procs[victim], _ = spawn_agent(
                    hosts[victim], tmp_path / f"agent-{victim}"
                )
            driver.join(timeout=180)
            assert not driver.is_alive(), "remote sweep wedged under chaos"
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
            for proc in procs:
                proc.wait(timeout=30)

        report = box["report"]
        assert report.stats["failed"] == 0
        assert report.aggregate("ref").rows == serial_reference
        # Retry bound: cache hits answer re-leases without a run, so even
        # under kills no cell *starts* more than max_attempts + 1 times on
        # any single host.
        for host, info in report.hosts.items():
            for index, runs in info["runs"].items():
                assert runs <= RETRY.max_attempts + 1, (
                    f"cell {index} ran {runs} times on {host}"
                )


def make_tasks():
    return expand_grid(parse_sweep(EXPRESSION))
