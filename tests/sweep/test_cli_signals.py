"""Graceful SIGINT/SIGTERM handling, in-process and through the real CLI."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.sweep.signals import GracefulInterrupt, SweepInterrupted

pytestmark = pytest.mark.sweep_smoke

REPO_ROOT = Path(__file__).resolve().parents[2]
ENV = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}


class TestGracefulInterruptUnit:
    def test_flag_mode_sets_requested(self, capsys):
        with GracefulInterrupt(on_first="flag", hint="resume hint", stream=sys.stderr) as g:
            assert not g.requested
            signal.raise_signal(signal.SIGINT)
            assert g.requested
        err = capsys.readouterr().err
        assert "finishing gracefully" in err
        assert "resume hint" in err

    def test_raise_mode_raises_in_main_thread(self):
        with pytest.raises(SweepInterrupted):
            with GracefulInterrupt(on_first="raise"):
                signal.raise_signal(signal.SIGTERM)

    def test_second_signal_forces_exit(self, capsys):
        exits = []
        with GracefulInterrupt(on_first="flag", force_exit=exits.append) as g:
            signal.raise_signal(signal.SIGINT)
            assert g.requested
            assert exits == []
            signal.raise_signal(signal.SIGINT)
        assert exits == [GracefulInterrupt.EXIT_CODE]
        assert "forcing exit" in capsys.readouterr().err

    def test_previous_handlers_restored(self):
        before = signal.getsignal(signal.SIGINT)
        with GracefulInterrupt():
            assert signal.getsignal(signal.SIGINT) != before
        assert signal.getsignal(signal.SIGINT) == before

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            GracefulInterrupt(on_first="explode")


class TestCliSignals:
    def test_sweep_sigint_flushes_and_hints_resume(self, tmp_path):
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "sweep",
                "fig4/single-link-churn scheme=numfabric,dctcp seed=0..249",
                "--serial",
                "--quiet",
                "--cache-dir",
                str(tmp_path),
            ],
            cwd=REPO_ROOT,
            env=ENV,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        # The header line is printed (and flushed) before any cell runs, so
        # reading it guarantees the signal handler is installed.
        header = process.stdout.readline()
        assert header.startswith("sweep: 500 cells")
        process.send_signal(signal.SIGINT)
        stdout, stderr = process.communicate(timeout=120)
        assert process.returncode == GracefulInterrupt.EXIT_CODE
        assert "finishing gracefully" in stderr
        assert "rerun the same command to resume" in stderr
        assert "cancelled=" in stdout

    def test_run_sigint_interrupts_gracefully(self):
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "run",
                "fig5/websearch",
                "--scale",
                "paper",
                "--quiet",
            ],
            cwd=REPO_ROOT,
            env=ENV,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        # Paper scale runs for tens of seconds; by 2.5s the handler is
        # installed and the scenario is mid-flight.
        time.sleep(2.5)
        assert process.poll() is None, "paper-scale run finished implausibly fast"
        process.send_signal(signal.SIGINT)
        _, stderr = process.communicate(timeout=120)
        assert process.returncode == GracefulInterrupt.EXIT_CODE
        assert "finishing gracefully" in stderr
        assert "run interrupted" in stderr
