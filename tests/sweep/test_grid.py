"""Grid-expression parsing and expansion."""

import pytest

from repro.scenarios.catalog import get_scenario
from repro.sweep import expand_grid, parse_sweep, tasks_from_specs
from repro.sweep.grid import _parse_values


class TestParseValues:
    def test_comma_list(self):
        assert _parse_values("numfabric,dctcp") == ("numfabric", "dctcp")

    def test_int_range(self):
        assert _parse_values("0..3") == (0, 1, 2, 3)

    def test_float_range_is_exact(self):
        values = _parse_values("0.3:0.9:0.1")
        assert values == (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)

    def test_scalar_autodetect(self):
        assert _parse_values("2") == (2,)
        assert _parse_values("2.5") == (2.5,)
        assert _parse_values("true") == (True,)
        assert _parse_values("websearch") == ("websearch",)

    def test_bad_ranges(self):
        with pytest.raises(ValueError):
            _parse_values("3..1")
        with pytest.raises(ValueError):
            _parse_values("a..b")
        with pytest.raises(ValueError):
            _parse_values("0.1:0.9:-0.1")


class TestParseSweep:
    def test_basic_grid(self):
        grid = parse_sweep("fig4/single-link-churn scheme=numfabric,dctcp seed=0..2")
        assert grid.scenario == "fig4/single-link-churn"
        assert grid.scale == "toy"
        assert grid.num_cells == 6
        assert [key for key, _ in grid.axes] == ["scheme", "seed"]

    def test_scheme_aliases_canonicalized(self):
        grid = parse_sweep("fig4/single-link-churn scheme=numfabric,rcpstar")
        assert dict(grid.axes)["scheme"] == ("NUMFabric", "RCP*")

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            parse_sweep("no/such-scenario seed=0")

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            parse_sweep("fig4/single-link-churn scheme=bogus")

    def test_duplicate_axis(self):
        with pytest.raises(ValueError, match="duplicate axis"):
            parse_sweep("fig4/single-link-churn seed=0 seed=1")

    def test_malformed_axis(self):
        with pytest.raises(ValueError, match="malformed axis"):
            parse_sweep("fig4/single-link-churn seed")

    def test_scenario_must_come_first(self):
        with pytest.raises(ValueError, match="must start with a scenario"):
            parse_sweep("seed=0 fig4/single-link-churn")

    def test_scale_cannot_be_swept(self):
        with pytest.raises(ValueError, match="scale cannot be swept"):
            parse_sweep("fig4/single-link-churn scale=toy,paper")

    def test_cli_engine_becomes_axis(self):
        grid = parse_sweep("fig4/single-link-churn seed=0..1", engine="fluid")
        assert dict(grid.axes)["engine"] == ("fluid",)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            parse_sweep("fig4/single-link-churn engine=quantum")

    def test_bad_axis_value_fails_at_parse_time(self):
        # Binding is validated eagerly: a typo'd axis name fails here, not
        # as a quarantined cell mid-sweep.
        with pytest.raises((TypeError, ValueError)):
            parse_sweep("fig4/single-link-churn no_such_axis=1")


class TestExpandGrid:
    def test_cartesian_order_is_deterministic(self):
        grid = parse_sweep("fig4/single-link-churn scheme=numfabric,dctcp seed=0..1")
        tasks = expand_grid(grid)
        assert [task.index for task in tasks] == [0, 1, 2, 3]
        assert [task.label for task in tasks] == [
            "scheme=NUMFabric seed=0",
            "scheme=NUMFabric seed=1",
            "scheme=DCTCP seed=0",
            "scheme=DCTCP seed=1",
        ]

    def test_axes_bind_into_specs(self):
        grid = parse_sweep("fig4/single-link-churn scheme=dctcp seed=5")
        (task,) = expand_grid(grid)
        assert task.spec.scheme.name == "DCTCP"
        assert task.spec.seed == 5
        assert task.seed == 5

    def test_workload_parameter_axis(self):
        base = get_scenario("fig5/websearch")
        key = next(iter(base.workload.params))
        grid = parse_sweep(f"fig5/websearch {key}={base.workload.params[key]}")
        (task,) = expand_grid(grid)
        assert task.spec.workload.params[key] == base.workload.params[key]


class TestTasksFromSpecs:
    def test_wraps_prebuilt_specs(self):
        specs = [get_scenario("fig4/single-link-churn")] * 2
        tasks = tasks_from_specs(specs, axes=[{"cell": "a"}, {"cell": "b"}])
        assert [task.index for task in tasks] == [0, 1]
        assert tasks[0].label == "cell=a"
        assert tasks[1].axes == (("cell", "b"),)

    def test_axes_length_mismatch(self):
        with pytest.raises(ValueError, match="axes length"):
            tasks_from_specs([get_scenario("fig4/single-link-churn")], axes=[])
