"""Sweep-fabric fault matrix: crash, hang, raise, kill -9, interrupt.

Every test drives real worker processes (or a real subprocess for the
``kill -9`` case) over the fast ``fig4/single-link-churn`` scenario, with
faults injected deterministically through ``SweepTask.inject`` -- the
acceptance criteria of the sweep fabric, exercised end to end.
"""

import dataclasses
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.sweep import ResultCache, RetryPolicy, expand_grid, parse_sweep, run_sweep

pytestmark = pytest.mark.sweep_smoke

REPO_ROOT = Path(__file__).resolve().parents[2]
EXPRESSION = "fig4/single-link-churn scheme=numfabric,dctcp seed=0..1"
FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.05, max_delay=0.2)


def make_tasks():
    return expand_grid(parse_sweep(EXPRESSION))


def with_inject(task, **inject):
    return dataclasses.replace(task, inject=inject)


@pytest.fixture(scope="module")
def serial_reference():
    """The uninterrupted in-process aggregate every sharded run must match."""
    return run_sweep(make_tasks(), mode="serial").aggregate("ref").rows


class TestShardedParityAndCache:
    def test_sharded_matches_serial_and_rerun_is_all_cache(
        self, tmp_path, serial_reference
    ):
        tasks = make_tasks()
        report = run_sweep(tasks, mode="sharded", cache=ResultCache(tmp_path), workers=2)
        assert report.stats["failed"] == 0
        assert report.aggregate("ref").rows == serial_reference

        rerun = run_sweep(tasks, mode="sharded", cache=ResultCache(tmp_path), workers=2)
        assert rerun.stats["cached"] == len(tasks)
        assert rerun.stats["computed"] == 0
        assert rerun.aggregate("ref").rows == serial_reference

    def test_serial_rerun_reads_sharded_cache(self, tmp_path, serial_reference):
        # The cache is mode-agnostic: cells computed by workers are hits for
        # a later serial run and vice versa.
        tasks = make_tasks()
        run_sweep(tasks, mode="sharded", cache=ResultCache(tmp_path), workers=2)
        rerun = run_sweep(tasks, mode="serial", cache=ResultCache(tmp_path))
        assert rerun.stats["cached"] == len(tasks)
        assert rerun.aggregate("ref").rows == serial_reference


class TestInjectedFaults:
    def test_crashed_worker_retries_and_succeeds(self, serial_reference):
        tasks = make_tasks()
        tasks[0] = with_inject(tasks[0], crash_on=(1,))
        report = run_sweep(
            tasks,
            mode="sharded",
            workers=2,
            retry=RetryPolicy(max_attempts=3, base_delay=0.05, max_delay=0.2),
        )
        assert report.stats["crash"] == 1
        assert report.stats["retried"] == 1
        assert report.stats["failed"] == 0
        assert report.aggregate("ref").rows == serial_reference
        # Observability: the retry that succeeded is visible as a second
        # dispatch of cell 0, and the backoff it waited through is summed.
        assert report.attempts[0] == 2
        assert all(report.attempts[task.index] == 1 for task in tasks[1:])
        assert report.stats["backoff_seconds"] > 0
        assert "attempts:" in "\n".join(report.summary_lines())

    def test_hung_task_times_out_then_quarantines(self):
        tasks = make_tasks()
        tasks[1] = with_inject(tasks[1], hang_on="all")
        report = run_sweep(
            tasks, mode="sharded", workers=2, timeout=1.5, retry=FAST_RETRY
        )
        (failure,) = report.failures
        assert failure.index == 1
        assert failure.kind == "timeout"
        assert failure.quarantined
        assert failure.attempts == FAST_RETRY.max_attempts
        # Graceful degradation: every other cell still returned.
        assert report.stats["computed"] == len(tasks) - 1
        rows = report.aggregate("deg").rows
        assert sum(1 for row in rows if row.get("status") == "failed") == 1

    def test_raising_task_quarantined_with_traceback(self):
        tasks = make_tasks()
        tasks[2] = with_inject(tasks[2], raise_on="all", message="injected-boom")
        report = run_sweep(tasks, mode="sharded", workers=2, retry=FAST_RETRY)
        (failure,) = report.failures
        assert failure.index == 2
        assert failure.kind == "error"
        assert failure.quarantined
        assert "injected-boom" in failure.message
        assert "RuntimeError" in failure.traceback
        assert report.stats["computed"] == len(tasks) - 1

    def test_silently_hung_worker_is_presumed_dead(self):
        tasks = make_tasks()
        tasks[3] = with_inject(tasks[3], silent_hang_on="all")
        report = run_sweep(
            tasks,
            mode="sharded",
            workers=2,
            heartbeat_interval=0.1,
            stall_timeout=0.8,
            retry=FAST_RETRY,
        )
        (failure,) = report.failures
        assert failure.index == 3
        assert failure.kind == "dead-worker"
        assert failure.quarantined
        assert report.stats["computed"] == len(tasks) - 1


class TestFirstContactDeath:
    """A worker that connects but dies or wedges before its first start ack.

    Regression tests for the spawn-timeout edge: heartbeats (or the hello)
    keep the stall detector happy, so these cases previously surfaced only
    after ``timeout + stall_timeout`` -- and with ``timeout=None``, never.
    """

    def _run_guarded(self, executor, wall_limit=90.0):
        import threading

        box = {}

        def run():
            box["out"] = executor.run()

        thread = threading.Thread(target=run, daemon=True)
        started = time.monotonic()
        thread.start()
        thread.join(wall_limit)
        assert not thread.is_alive(), "executor wedged on a pre-start fault"
        return box["out"], time.monotonic() - started

    def test_wedged_pre_start_worker_is_killed_promptly_without_timeout(self):
        from repro.sweep.executor import ShardedExecutor

        executor = ShardedExecutor(
            make_tasks(),
            workers=1,
            timeout=None,  # the previously-undetectable configuration
            heartbeat_interval=0.1,
            stall_timeout=5.0,
            spawn_timeout=2.0,
            start_ack_timeout=1.0,
            retry=RetryPolicy(max_attempts=3, base_delay=0.05, max_delay=0.2),
            worker_faults={"wedge_before_start": (0,)},
        )
        (payloads, failures, stats, attempts), elapsed = self._run_guarded(executor)
        # Worker 0 took the task and wedged while its heartbeats kept
        # flowing; the start-ack deadline killed it and the retry succeeded.
        assert stats["dead-worker"] == 1
        assert not failures
        assert len(payloads) == len(make_tasks())
        assert attempts[0] == 2
        assert elapsed < 60.0

    def test_worker_dying_right_after_hello_fails_fast_not_at_stall(self):
        from repro.sweep.executor import ShardedExecutor

        executor = ShardedExecutor(
            make_tasks(),
            workers=1,
            heartbeat_interval=0.1,
            stall_timeout=30.0,  # far beyond the asserted wall-clock bound
            retry=RetryPolicy(max_attempts=3, base_delay=0.05, max_delay=0.2),
            worker_faults={"die_after_hello": (0,)},
        )
        (payloads, failures, stats, attempts), elapsed = self._run_guarded(executor)
        # Death is detected from the pipe EOF, not by waiting out the
        # 30-second stall detector.
        assert stats["crash"] == 1
        assert not failures
        assert len(payloads) == len(make_tasks())
        assert elapsed < 25.0


class TestCrashOnlyResume:
    def test_kill9_mid_sweep_then_resume_from_cache(self, tmp_path, serial_reference):
        """The acceptance scenario: SIGKILL the driver, rerun, pay only the delta."""
        script = (
            "import sys, time\n"
            "from repro.sweep import ResultCache, expand_grid, parse_sweep, run_sweep\n"
            f"tasks = expand_grid(parse_sweep({EXPRESSION!r}))\n"
            # Throttle between cells so the kill lands mid-sweep, never after.
            "slow = lambda message: time.sleep(0.5)\n"
            f"run_sweep(tasks, mode='serial', cache=ResultCache({str(tmp_path)!r}),\n"
            "          progress=slow)\n"
        )
        process = subprocess.Popen(
            [sys.executable, "-c", script],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        try:
            cache = ResultCache(tmp_path)
            deadline = time.monotonic() + 60
            while len(cache) < 1 and time.monotonic() < deadline:
                assert process.poll() is None, "sweep finished before it was killed"
                time.sleep(0.05)
            assert len(cache) >= 1, "no cache entry appeared within 60s"
            process.kill()  # SIGKILL: no handlers, no cleanup, crash-only
        finally:
            if process.poll() is None:
                process.kill()
            process.wait(timeout=30)

        tasks = make_tasks()
        resumed = run_sweep(tasks, mode="serial", cache=ResultCache(tmp_path))
        assert resumed.stats["cached"] >= 1
        assert resumed.stats["computed"] == len(tasks) - resumed.stats["cached"]
        assert resumed.stats["failed"] == 0
        assert resumed.aggregate("ref").rows == serial_reference


class TestInterrupt:
    def test_interrupt_flag_cancels_remaining_cells(self):
        class FakeInterrupt:
            requested = False

        interrupt = FakeInterrupt()

        def request_after_first(message):
            interrupt.requested = True

        tasks = make_tasks()
        report = run_sweep(
            tasks, mode="serial", interrupt=interrupt, progress=request_after_first
        )
        assert report.stats["computed"] == 1
        assert report.stats["cancelled"] == len(tasks) - 1
        assert all(failure.kind == "cancelled" for failure in report.failures)
        rows = report.aggregate("cancelled").rows
        assert sum(1 for row in rows if row.get("status") == "cancelled") == len(tasks) - 1
