"""Remote-dispatch acceptance matrix over real subprocesses and TCP.

Three scenarios, all on loopback with a driver plus two agent
subprocesses: a clean run (bit-identical to serial), one agent SIGKILLed
mid-sweep (the survivor finishes, rows unchanged), and the driver
SIGKILLed then resumed (only non-cached cells recomputed).
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.sweep import (
    AgentFaults,
    ResultCache,
    RetryPolicy,
    expand_grid,
    parse_sweep,
    run_sweep,
)
from repro.sweep.remote import spawn_local_agents

pytestmark = pytest.mark.remote_smoke

REPO_ROOT = Path(__file__).resolve().parents[2]
EXPRESSION = "fig4/single-link-churn scheme=numfabric,dctcp seed=0..1"
ENV = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}


def make_tasks():
    return expand_grid(parse_sweep(EXPRESSION))


@pytest.fixture(scope="module")
def serial_reference():
    return run_sweep(make_tasks(), mode="serial").aggregate("ref").rows


def start_agents(tmp_path, count, faults=None, workers=1):
    return spawn_local_agents(
        count,
        cache_dirs=[tmp_path / f"agent-{i}" for i in range(count)],
        workers=workers,
        faults=faults,
        env=ENV,
    )


def reap(procs):
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
    for proc in procs:
        proc.wait(timeout=30)


class TestRemoteSmoke:
    def test_clean_loopback_run_matches_serial(self, tmp_path, serial_reference):
        procs, hosts = start_agents(tmp_path, 2, workers=2)
        try:
            report = run_sweep(
                make_tasks(),
                mode="remote",
                hosts=hosts,
                cache=ResultCache(tmp_path / "driver"),
            )
            assert report.stats["failed"] == 0
            assert report.aggregate("ref").rows == serial_reference
            assert sum(info["cells"] for info in report.hosts.values()) == len(
                make_tasks()
            )
        finally:
            reap(procs)

    def test_agent_sigkill_mid_sweep_changes_nothing(self, tmp_path, serial_reference):
        # Slow acks widen the window so the SIGKILL lands mid-sweep.
        slow = AgentFaults(slow_ack_on="all", slow_ack_seconds=0.5)
        procs, hosts = start_agents(tmp_path, 2, faults=[slow, slow], workers=2)
        try:
            import threading

            box = {}

            def drive():
                box["report"] = run_sweep(
                    make_tasks(),
                    mode="remote",
                    hosts=hosts,
                    cache=ResultCache(tmp_path / "driver"),
                    stall_timeout=2.0,
                    heartbeat_interval=0.2,
                    retry=RetryPolicy(max_attempts=3, base_delay=0.05, max_delay=0.2),
                    connect_retry=RetryPolicy(
                        max_attempts=3, base_delay=0.1, max_delay=0.5
                    ),
                )

            driver = threading.Thread(target=drive, daemon=True)
            driver.start()
            time.sleep(1.5)  # agents are up and at least one cell is in flight
            procs[0].send_signal(signal.SIGKILL)
            driver.join(timeout=120)
            assert not driver.is_alive(), "remote sweep wedged after agent SIGKILL"
            report = box["report"]
            assert report.stats["failed"] == 0
            assert report.aggregate("ref").rows == serial_reference
        finally:
            reap(procs)

    def test_driver_sigkill_then_resume_recomputes_only_the_delta(
        self, tmp_path, serial_reference
    ):
        slow = AgentFaults(slow_ack_on="all", slow_ack_seconds=0.6)
        procs, hosts = start_agents(tmp_path, 2, faults=[slow, slow], workers=1)
        driver_cache = ResultCache(tmp_path / "driver")
        script = (
            "from repro.sweep import ResultCache, expand_grid, parse_sweep, run_sweep\n"
            f"tasks = expand_grid(parse_sweep({EXPRESSION!r}))\n"
            f"run_sweep(tasks, mode='remote', hosts={hosts!r},\n"
            f"          cache=ResultCache({str(tmp_path / 'driver')!r}))\n"
        )
        try:
            driver = subprocess.Popen(
                [sys.executable, "-c", script], cwd=REPO_ROOT, env=ENV
            )
            try:
                deadline = time.monotonic() + 90
                while len(driver_cache) < 1 and time.monotonic() < deadline:
                    assert driver.poll() is None, "sweep finished before the kill"
                    time.sleep(0.05)
                assert len(driver_cache) >= 1, "no cell was acked within 90s"
                driver.kill()  # SIGKILL: leases die with the driver
            finally:
                if driver.poll() is None:
                    driver.kill()
                driver.wait(timeout=30)

            cached_before = len(driver_cache)
            resumed = run_sweep(
                make_tasks(), mode="remote", hosts=hosts, cache=driver_cache
            )
            # Resume is crash-only bookkeeping: acked cells come from the
            # driver cache, never re-leased...
            assert resumed.stats["cached"] == cached_before >= 1
            assert (
                resumed.stats["computed"]
                == len(make_tasks()) - resumed.stats["cached"]
            )
            assert resumed.stats["failed"] == 0
            # ...and the final rows are exactly the serial rows.
            assert resumed.aggregate("ref").rows == serial_reference
        finally:
            reap(procs)
