"""Remote dispatch over loopback TCP: parity, leases, faults, quarantine.

Agents run as in-process threads (each still spawning real worker
processes), so every robustness path -- reconnect after a dropped
connection, dead-host detection under a partition, lease expiry and
reassignment, distinct-host quarantine, payload verification -- is
exercised against the real protocol without subprocess startup cost.
The subprocess/SIGKILL matrix lives in ``test_remote_smoke.py``.
"""

import dataclasses
import json
import pickle
import socket
import threading

import pytest

from repro.sweep import (
    AgentFaults,
    ResultCache,
    RetryPolicy,
    SweepAgent,
    expand_grid,
    parse_sweep,
    run_sweep,
)
from repro.sweep.cache import code_fingerprint
from repro.sweep.remote import RemoteExecutor
from repro.sweep.transport import PROTOCOL_VERSION, pack_blob

EXPRESSION = "fig4/single-link-churn scheme=numfabric,dctcp seed=0..1"
FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.05, max_delay=0.2)


def make_tasks():
    return expand_grid(parse_sweep(EXPRESSION))


def with_inject(task, **inject):
    return dataclasses.replace(task, inject=inject)


class AgentHarness:
    """One in-process SweepAgent on a daemon thread, with clean teardown."""

    def __init__(self, cache_dir, *, workers=2, faults=None, name=None, **kwargs):
        self.agent = SweepAgent(
            "127.0.0.1",
            0,
            workers=workers,
            cache=cache_dir,
            faults=faults,
            name=name,
            **kwargs,
        )
        self._stop = threading.Event()
        self.thread = threading.Thread(
            target=self.agent.serve_forever,
            kwargs={"stop": self._stop.is_set},
            daemon=True,
        )
        self.thread.start()
        self.host = f"{self.agent.address[0]}:{self.agent.address[1]}"

    def stop(self):
        self._stop.set()
        self.thread.join(20)


@pytest.fixture
def agents(tmp_path):
    started = []

    def start(count=1, **kwargs):
        for i in range(len(started), len(started) + count):
            started.append(
                AgentHarness(tmp_path / f"agent-{i}", name=f"agent-{i}", **kwargs)
            )
        return started[-count:]

    yield start
    for harness in started:
        harness.stop()


@pytest.fixture(scope="module")
def serial_reference():
    return run_sweep(make_tasks(), mode="serial").aggregate("ref").rows


class TestLoopbackParity:
    def test_remote_matches_serial_and_rerun_is_all_cache(
        self, tmp_path, agents, serial_reference
    ):
        (a, b) = agents(2)
        tasks = make_tasks()
        driver_cache = ResultCache(tmp_path / "driver")
        report = run_sweep(
            tasks, mode="remote", hosts=[a.host, b.host], cache=driver_cache
        )
        assert report.stats["failed"] == 0
        assert report.aggregate("ref").rows == serial_reference
        # Observability: every computed cell has a dispatch count and the
        # per-host tallies cover all cells between them.
        assert set(report.attempts) == {task.index for task in tasks}
        assert all(count >= 1 for count in report.attempts.values())
        assert sum(info["cells"] for info in report.hosts.values()) == len(tasks)
        summary = "\n".join(report.summary_lines())
        assert "attempts:" in summary and "host " in summary

        # The driver re-cached every verified payload locally: the rerun is
        # pure cache, no agent involved.
        rerun = run_sweep(
            tasks, mode="remote", hosts=[a.host, b.host], cache=driver_cache
        )
        assert rerun.stats["cached"] == len(tasks)
        assert rerun.stats["computed"] == 0
        assert rerun.aggregate("ref").rows == serial_reference

    def test_agent_local_cache_answers_re_leased_cells(
        self, agents, serial_reference
    ):
        (a,) = agents(1)
        tasks = make_tasks()
        # No driver cache: the second sweep re-leases every cell, and the
        # agent answers all of them from its own cache without recomputing.
        first = run_sweep(tasks, mode="remote", hosts=[a.host], cache=None)
        assert first.stats["failed"] == 0
        second = run_sweep(tasks, mode="remote", hosts=[a.host], cache=None)
        assert second.stats["agent_cached"] == len(tasks)
        assert second.aggregate("ref").rows == serial_reference


class TestFaultHooks:
    def test_dropped_connection_reconnects_and_hits_agent_cache(
        self, agents, serial_reference
    ):
        (a,) = agents(1, faults=AgentFaults(drop_conn_on="all"))
        report = run_sweep(make_tasks(), mode="remote", hosts=[a.host], cache=None)
        # Every first ack was swallowed by a connection drop; the result was
        # already in the agent cache, so each re-lease was an instant hit.
        assert report.stats["failed"] == 0
        assert report.stats.get("reconnects", 0) >= 1
        assert report.stats.get("agent_cached", 0) >= 1
        assert report.aggregate("ref").rows == serial_reference
        assert report.hosts[a.host]["reconnects"] >= 1

    def test_partitioned_host_is_presumed_dead_and_cells_move(
        self, agents, serial_reference
    ):
        (a,) = agents(1, faults=AgentFaults(partition_on="all"), heartbeat_interval=0.2)
        (b,) = agents(1, heartbeat_interval=0.2)
        report = run_sweep(
            make_tasks(),
            mode="remote",
            hosts=[a.host, b.host],
            cache=None,
            heartbeat_interval=0.2,
            stall_timeout=1.0,
        )
        # The partitioned agent keeps its socket open but goes silent
        # (half-open); the stall detector declares it lost and its leases
        # are reassigned to the healthy host.
        assert report.stats["failed"] == 0
        assert report.stats.get("host_lost", 0) >= 1
        assert report.aggregate("ref").rows == serial_reference
        assert report.hosts[b.host]["cells"] >= 1

    def test_expired_lease_is_reassigned_and_retry_succeeds(
        self, agents, serial_reference
    ):
        (a,) = agents(1)
        tasks = make_tasks()
        # First attempt of cell 0 hangs inside the worker; the lease expires,
        # the driver cancels it and the second attempt completes normally.
        tasks[0] = with_inject(tasks[0], hang_on=(1,))
        report = run_sweep(
            tasks,
            mode="remote",
            hosts=[a.host],
            cache=None,
            lease_timeout=2.0,
            retry=RetryPolicy(max_attempts=3, base_delay=0.05, max_delay=0.2),
        )
        assert report.stats.get("lease-expired", 0) >= 1
        assert report.stats.get("retried", 0) >= 1
        assert report.stats["failed"] == 0
        assert report.aggregate("ref").rows == serial_reference
        assert report.attempts[0] >= 2

    def test_cell_failing_on_two_distinct_hosts_is_quarantined_early(self, agents):
        (a, b) = agents(2)
        tasks = make_tasks()
        tasks[1] = with_inject(tasks[1], raise_on="all", message="injected-boom")
        report = run_sweep(
            tasks,
            mode="remote",
            hosts=[a.host, b.host],
            cache=None,
            # Budget of 5 attempts, but two distinct hosts failing must
            # quarantine the cell first: the cell is broken, not the fleet.
            retry=RetryPolicy(max_attempts=5, base_delay=0.05, max_delay=0.2),
            quarantine_hosts=2,
        )
        (failure,) = report.failures
        assert failure.index == 1
        assert failure.quarantined
        assert failure.attempts == 2
        assert "distinct host" in failure.message
        assert report.stats["computed"] == len(tasks) - 1


class TestVerification:
    def test_code_mismatch_hosts_are_rejected(self, agents):
        (a,) = agents(1)
        tasks = make_tasks()
        executor = RemoteExecutor(
            tasks,
            hosts=[a.host],
            keys={task.index: f"{task.index:064x}" for task in tasks},
            connect_retry=RetryPolicy(max_attempts=1, base_delay=0.05, max_delay=0.1),
        )
        executor._code = "a-different-source-tree"
        payloads, failures, stats, attempts, hosts = executor.run()
        # The agent runs "different code": accepting its results would cache
        # them under the wrong keys, so the host is written off and the
        # sweep fails closed rather than silently mixing code versions.
        assert not payloads
        assert len(failures) == len(tasks)
        assert all(f.kind == "no-hosts" for f in failures.values())

    def test_corrupt_payload_reads_as_failure_not_data(self):
        # A hand-rolled "agent" that helloes correctly but acks every cell
        # with a well-hashed blob that is not a valid cache payload.
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host = f"127.0.0.1:{listener.getsockname()[1]}"

        def evil_agent():
            conn, _ = listener.accept()
            reader = conn.makefile("rb")
            conn.sendall(
                (
                    json.dumps(
                        {
                            "type": "hello",
                            "proto": PROTOCOL_VERSION,
                            "agent": "evil",
                            "pid": 0,
                            "slots": 4,
                            "code": code_fingerprint(),
                        }
                    )
                    + "\n"
                ).encode()
            )
            blob = pack_blob(pickle.dumps({"not": "a cache payload"}))
            while True:
                line = reader.readline()
                if not line:
                    return
                message = json.loads(line)
                if message.get("type") != "task":
                    continue
                reply = {
                    "type": "done",
                    "index": message["index"],
                    "attempt": message["attempt"],
                    "key": message["key"],
                    "blob": blob,
                    "elapsed": 0.0,
                    "cached": False,
                    "agent": "evil",
                }
                conn.sendall((json.dumps(reply) + "\n").encode())

        thread = threading.Thread(target=evil_agent, daemon=True)
        thread.start()
        try:
            tasks = make_tasks()[:1]
            report = run_sweep(
                tasks, mode="remote", hosts=[host], cache=None, retry=FAST_RETRY
            )
            (failure,) = report.failures
            assert failure.kind == "bad-payload"
            assert failure.quarantined
            assert report.stats["bad-payload"] == FAST_RETRY.max_attempts
        finally:
            listener.close()


class TestAgentFaultsParse:
    def test_parses_indices_all_and_seconds(self):
        faults = AgentFaults.parse(
            ["drop_conn_on=0,3", "partition_on=all", "slow_ack_seconds=0.25"]
        )
        assert faults.drop_conn_on == (0, 3)
        assert faults.partition_on == "all"
        assert faults.slow_ack_seconds == 0.25

    def test_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown fault hook"):
            AgentFaults.parse(["explode_on=1"])
        with pytest.raises(ValueError, match="unknown fault hook"):
            AgentFaults.parse(["no-equals-sign"])
