"""Wire framing: JSON lines, blob hashing, pipe/socket transport parity."""

import json
import multiprocessing
import socket

import pytest

from repro.sweep.transport import (
    PipeTransport,
    ProtocolError,
    SocketTransport,
    TransportClosed,
    pack_blob,
    pack_pickle,
    parse_host,
    unpack_blob,
    unpack_pickle,
    wait_readable,
)


def socket_pair():
    a, b = socket.socketpair()
    return SocketTransport(a), SocketTransport(b)


class TestBlobs:
    def test_round_trip_verifies_hash(self):
        data = b"\x00\x01payload\xff" * 100
        assert unpack_blob(pack_blob(data)) == data

    def test_corrupted_blob_is_rejected(self):
        blob = pack_blob(b"payload")
        tampered = dict(blob, b64=pack_blob(b"payloaX")["b64"])
        with pytest.raises(ProtocolError, match="hash mismatch"):
            unpack_blob(tampered)

    def test_malformed_blob_is_rejected(self):
        with pytest.raises(ProtocolError):
            unpack_blob({"sha256": "x"})
        with pytest.raises(ProtocolError):
            unpack_blob("not a dict")
        with pytest.raises(ProtocolError, match="base64"):
            unpack_blob({"sha256": "x", "b64": "!!!not base64!!!"})

    def test_pickle_round_trip(self):
        value = {"nested": (1, 2.5, "x"), "t": [None, True]}
        assert unpack_pickle(pack_pickle(value)) == value
        with pytest.raises(ProtocolError):
            unpack_pickle("@@@")


class TestParseHost:
    def test_accepts_string_and_tuple(self):
        assert parse_host("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert parse_host(("10.0.0.2", 80)) == ("10.0.0.2", 80)

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_host("no-port")
        with pytest.raises(ValueError):
            parse_host("host:not-a-number")


class TestSocketTransport:
    def test_message_round_trip(self):
        a, b = socket_pair()
        try:
            a.send({"type": "hello", "n": 1})
            a.send({"type": "data", "blob": pack_blob(b"x")})
            ready = wait_readable([b], timeout=5.0)
            assert b in ready
            messages = b.recv_all()
            assert [m["type"] for m in messages] == ["hello", "data"]
            assert unpack_blob(messages[1]["blob"]) == b"x"
        finally:
            a.close()
            b.close()

    def test_partial_line_buffers_until_newline(self):
        a, b = socket_pair()
        try:
            whole = json.dumps({"type": "split", "v": 42}).encode() + b"\n"
            a.sock.sendall(whole[:5])
            wait_readable([b], timeout=5.0)
            assert b.recv_all() == []  # incomplete line: nothing delivered
            a.sock.sendall(whole[5:])
            wait_readable([b], timeout=5.0)
            assert b.recv_all() == [{"type": "split", "v": 42}]
        finally:
            a.close()
            b.close()

    def test_typeless_and_undecodable_messages_are_protocol_errors(self):
        a, b = socket_pair()
        try:
            with pytest.raises(ProtocolError, match="without a type"):
                a.send({"no": "type"})
            a.sock.sendall(b"not json at all\n")
            wait_readable([b], timeout=5.0)
            with pytest.raises(ProtocolError):
                b.recv_all()
        finally:
            a.close()
            b.close()

    def test_oversize_line_is_a_protocol_error(self):
        a_sock, b_sock = socket.socketpair()
        a = SocketTransport(a_sock)
        b = SocketTransport(b_sock, max_line=1024)
        try:
            a.sock.sendall(b"x" * 2048)  # no newline: unbounded-buffer probe
            wait_readable([b], timeout=5.0)
            with pytest.raises(ProtocolError, match="without a newline"):
                b.recv_all()
        finally:
            a.close()
            b.close()

    def test_peer_close_drains_buffered_messages_first(self):
        a, b = socket_pair()
        try:
            a.send({"type": "last-words"})
            a.close()
            wait_readable([b], timeout=5.0)
            assert b.recv_all() == [{"type": "last-words"}]
            with pytest.raises(TransportClosed):
                b.recv_all()
        finally:
            b.close()

    def test_send_to_closed_peer_raises_transport_closed(self):
        a, b = socket_pair()
        b.close()
        try:
            with pytest.raises(TransportClosed):
                # One send may land in the kernel buffer before the RST.
                for _ in range(64):
                    a.send({"type": "ping"})
        finally:
            a.close()


class TestPipeTransport:
    def test_round_trip_and_eof(self):
        parent, child = multiprocessing.get_context("spawn").Pipe(duplex=True)
        a, b = PipeTransport(parent), PipeTransport(child)
        a.send(("task", 1))
        a.send(("stop",))
        assert b.recv_all() == [("task", 1), ("stop",)]
        a.close()
        with pytest.raises(TransportClosed):
            while True:  # poll until the close is visible on this side
                b.recv_all()

    def test_closed_transport_is_immediately_readable(self):
        parent, child = multiprocessing.get_context("spawn").Pipe(duplex=True)
        a, b = PipeTransport(parent), PipeTransport(child)
        a.close()
        b.close()
        # A dead descriptor must be reported ready, not block the select.
        assert b in wait_readable([b], timeout=0.1)
