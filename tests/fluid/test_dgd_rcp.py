"""Tests for the DGD and RCP* fluid baselines."""

import pytest

from repro.core.utility import AlphaFairUtility, LogUtility
from repro.fluid.convergence import ConvergenceCriterion, convergence_iterations
from repro.fluid.dgd import DgdFluidParameters, DgdFluidSimulator
from repro.fluid.dctcp import DctcpFluidSimulator
from repro.fluid.network import FluidFlow, FluidNetwork
from repro.fluid.oracle import solve_num
from repro.fluid.rcp import RcpStarFluidSimulator
from repro.fluid.xwi import XwiFluidSimulator


class TestDgdFluidSimulator:
    def test_converges_to_proportional_fairness(self):
        network = FluidNetwork.single_link(10e9, 4)
        simulator = DgdFluidSimulator(network)
        simulator.run(400)
        optimal = solve_num(network).rates
        final = simulator.history[-1].rates
        for flow_id, rate in optimal.items():
            assert final[flow_id] == pytest.approx(rate, rel=0.1)

    def test_parking_lot_convergence(self):
        network = FluidNetwork({"l1": 9e9, "l2": 9e9})
        network.add_flow(FluidFlow("long", ("l1", "l2"), LogUtility()))
        network.add_flow(FluidFlow("s1", ("l1",), LogUtility()))
        network.add_flow(FluidFlow("s2", ("l2",), LogUtility()))
        simulator = DgdFluidSimulator(network)
        simulator.run(600)
        optimal = solve_num(network).rates
        final = simulator.history[-1].rates
        for flow_id, rate in optimal.items():
            assert final[flow_id] == pytest.approx(rate, rel=0.15)

    def test_rate_capped_at_two_bdp(self):
        params = DgdFluidParameters(max_outstanding_bdp=2.0)
        network = FluidNetwork.single_link(10e9, 1)
        simulator = DgdFluidSimulator(network, params=params, initial_price=1e-15)
        record = simulator.step()
        assert record.rates[0] <= 2.0 * 10e9 + 1.0

    def test_transient_overload_is_possible(self):
        """Unlike xWI, DGD can oversubscribe links while prices are wrong."""
        network = FluidNetwork.single_link(10e9, 8)
        simulator = DgdFluidSimulator(network, initial_price=1e-12)
        record = simulator.step()
        load = sum(record.rates.values())
        assert load > 10e9

    def test_slower_than_xwi(self):
        """The headline comparison: xWI converges in fewer control iterations."""
        def build():
            network = FluidNetwork({"a": 10e9, "b": 40e9})
            for i in range(10):
                path = ("a",) if i % 2 == 0 else ("a", "b")
                network.add_flow(FluidFlow(i, path, LogUtility()))
            return network

        criterion = ConvergenceCriterion(hold_iterations=3)
        network = build()
        optimal = solve_num(network).rates

        xwi = XwiFluidSimulator(build())
        xwi.run(500)
        xwi_iters = convergence_iterations(xwi.rate_history(), optimal, criterion)

        dgd = DgdFluidSimulator(build())
        dgd.run(500)
        dgd_iters = convergence_iterations(dgd.rate_history(), optimal, criterion)

        assert xwi_iters is not None
        if dgd_iters is None:
            dgd_iters = 500
        assert xwi_iters < dgd_iters


class TestRcpStarFluidSimulator:
    def test_single_link_fair_share(self):
        network = FluidNetwork.single_link(10e9, 4)
        simulator = RcpStarFluidSimulator(network)
        simulator.run(400)
        final = simulator.history[-1].rates
        for rate in final.values():
            assert rate == pytest.approx(2.5e9, rel=0.1)

    def test_alpha_fairness_on_parking_lot(self):
        network = FluidNetwork({"l1": 9e9, "l2": 9e9})
        network.add_flow(FluidFlow("long", ("l1", "l2"), AlphaFairUtility(alpha=1.0)))
        network.add_flow(FluidFlow("s1", ("l1",), AlphaFairUtility(alpha=1.0)))
        network.add_flow(FluidFlow("s2", ("l2",), AlphaFairUtility(alpha=1.0)))
        simulator = RcpStarFluidSimulator(RcpStarFluidSimulator(network).network)
        simulator.run(600)
        optimal = solve_num(network).rates
        final = simulator.history[-1].rates
        for flow_id, rate in optimal.items():
            assert final[flow_id] == pytest.approx(rate, rel=0.2)

    def test_fair_rate_never_exceeds_capacity(self):
        network = FluidNetwork.single_link(10e9, 2)
        simulator = RcpStarFluidSimulator(network)
        for record in simulator.run(100):
            assert all(rate <= 10e9 for rate in record.fair_rates.values())


class TestDctcpFluidSimulator:
    def test_rates_oscillate_and_do_not_converge(self):
        """DCTCP's rates keep oscillating (the Figure 4(b) observation)."""
        network = FluidNetwork.single_link(10e9, 4)
        simulator = DctcpFluidSimulator(network)
        records = simulator.run(3000)
        late = [record.rates[0] for record in records[-1000:]]
        mean = sum(late) / len(late)
        spread = (max(late) - min(late)) / mean
        assert spread > 0.2

    def test_aggregate_throughput_reasonable(self):
        network = FluidNetwork.single_link(10e9, 4)
        simulator = DctcpFluidSimulator(network)
        records = simulator.run(3000)
        late_totals = [sum(record.rates.values()) for record in records[-500:]]
        mean_total = sum(late_totals) / len(late_totals)
        assert mean_total == pytest.approx(10e9, rel=0.35)

    def test_flow_departure_cleans_state(self):
        network = FluidNetwork.single_link(10e9, 2)
        simulator = DctcpFluidSimulator(network)
        simulator.run(10)
        network.remove_flow(0)
        simulator.run(10)
        assert 0 not in simulator.windows
