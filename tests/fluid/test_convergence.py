"""Tests for the convergence-time measurement utilities."""

import pytest

from repro.fluid.convergence import (
    ConvergenceCriterion,
    convergence_iterations,
    fraction_converged,
    iterations_to_seconds,
    per_flow_convergence,
    rates_over_time,
)


class TestConvergenceCriterion:
    def test_defaults_match_paper(self):
        criterion = ConvergenceCriterion()
        assert criterion.flow_fraction == 0.95
        assert criterion.rate_tolerance == 0.10

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvergenceCriterion(flow_fraction=0.0)
        with pytest.raises(ValueError):
            ConvergenceCriterion(rate_tolerance=0.0)
        with pytest.raises(ValueError):
            ConvergenceCriterion(hold_iterations=0)


class TestFractionConverged:
    def test_all_within_tolerance(self):
        assert fraction_converged({"a": 1.05, "b": 0.95}, {"a": 1.0, "b": 1.0}, 0.1) == 1.0

    def test_half_within_tolerance(self):
        assert fraction_converged({"a": 1.05, "b": 2.0}, {"a": 1.0, "b": 1.0}, 0.1) == 0.5

    def test_missing_flow_counts_as_unconverged(self):
        assert fraction_converged({}, {"a": 1.0}, 0.1) == 0.0

    def test_zero_optimal_rate(self):
        assert fraction_converged({"a": 0.0}, {"a": 0.0}, 0.1) == 1.0

    def test_empty_optimal(self):
        assert fraction_converged({"a": 1.0}, {}, 0.1) == 1.0


class TestConvergenceIterations:
    def test_simple_history(self):
        optimal = {"a": 1.0}
        history = [{"a": 0.1}, {"a": 0.5}, {"a": 0.95}, {"a": 1.0}]
        assert convergence_iterations(history, optimal) == 2

    def test_hold_requirement(self):
        optimal = {"a": 1.0}
        history = [{"a": 1.0}, {"a": 0.2}, {"a": 1.0}, {"a": 1.0}, {"a": 1.0}]
        criterion = ConvergenceCriterion(hold_iterations=3)
        assert convergence_iterations(history, optimal, criterion) == 2

    def test_never_converges(self):
        optimal = {"a": 1.0}
        history = [{"a": 0.1}] * 10
        assert convergence_iterations(history, optimal) is None

    def test_fraction_threshold(self):
        optimal = {"a": 1.0, "b": 1.0, "c": 1.0}
        # Two of three flows converge -> 66% < 95%.
        history = [{"a": 1.0, "b": 1.0, "c": 0.0}] * 5
        assert convergence_iterations(history, optimal) is None
        criterion = ConvergenceCriterion(flow_fraction=0.6)
        assert convergence_iterations(history, optimal, criterion) == 0


class TestHelpers:
    def test_iterations_to_seconds(self):
        assert iterations_to_seconds(10, 30e-6) == pytest.approx(300e-6)
        assert iterations_to_seconds(None, 30e-6) is None

    def test_per_flow_convergence(self):
        optimal = {"a": 1.0, "b": 2.0}
        history = [
            {"a": 0.0, "b": 0.0},
            {"a": 1.0, "b": 0.0},
            {"a": 1.0, "b": 2.0},
        ]
        result = per_flow_convergence(history, optimal)
        assert result["a"] == 1
        assert result["b"] == 2

    def test_per_flow_convergence_requires_staying_converged(self):
        optimal = {"a": 1.0}
        history = [{"a": 1.0}, {"a": 5.0}, {"a": 1.0}]
        assert per_flow_convergence(history, optimal)["a"] == 2

    def test_per_flow_never_converged(self):
        optimal = {"a": 1.0}
        history = [{"a": 5.0}, {"a": 5.0}]
        assert per_flow_convergence(history, optimal)["a"] is None

    def test_rates_over_time(self):
        history = [{"a": 1.0}, {"a": 2.0}, {}]
        assert rates_over_time(history, "a") == [1.0, 2.0, 0.0]
