"""Parity suite: the vectorized fluid backend must match the scalar reference.

Every test drives the scalar and the vectorized backend through the same
scenario and asserts the allocations (and prices) agree within 1e-9 --
far looser than the observed agreement (~1e-12 relative), but tight enough
that any semantic divergence (different clamping, different update order)
fails immediately.
"""

import copy

import pytest

from repro.core.bandwidth_function import PiecewiseLinearBandwidthFunction
from repro.core.config import NumFabricParameters
from repro.core.utility import (
    AlphaFairUtility,
    BandwidthFunctionUtility,
    FctUtility,
    LogUtility,
    WeightedAlphaFairUtility,
)
from repro.fluid.maxmin import weighted_max_min
from repro.fluid.network import FlowGroup, FluidFlow, FluidNetwork
from repro.fluid.vectorized import compile_network
from repro.fluid.xwi import XwiFluidSimulator

TOLERANCE = 1e-9


def assert_parity(scalar_rates, vectorized_rates, scale=1.0):
    assert set(scalar_rates) == set(vectorized_rates)
    for flow_id, rate in scalar_rates.items():
        assert vectorized_rates[flow_id] == pytest.approx(
            rate, rel=TOLERANCE, abs=TOLERANCE * scale
        ), flow_id


def make_pair(capacities):
    """Two structurally identical networks (independent utility instances)."""
    return FluidNetwork(dict(capacities)), FluidNetwork(dict(capacities))


def add_to_both(networks, flow_id, path, utility, group_id=None):
    for network in networks:
        network.add_flow(FluidFlow(flow_id, path, copy.deepcopy(utility), group_id=group_id))


def run_both(networks, iterations, params=None):
    scalar = XwiFluidSimulator(networks[0], params=params)
    vectorized = XwiFluidSimulator(networks[1], params=params, backend="vectorized")
    for _ in range(iterations):
        scalar_record = scalar.step()
        vectorized_record = vectorized.step()
        assert_parity(scalar_record.rates, vectorized_record.rates, scale=1e9)
    return scalar, vectorized


class TestMaxMinBackendParity:
    def test_single_link(self):
        weights = {i: float(i + 1) for i in range(10)}
        paths = {i: ("l",) for i in range(10)}
        capacities = {"l": 10e9}
        assert_parity(
            weighted_max_min(weights, paths, capacities),
            weighted_max_min(weights, paths, capacities, backend="vectorized"),
            scale=1e9,
        )

    def test_parking_lot(self):
        weights = {"long": 1.0, "s1": 2.0, "s2": 0.5}
        paths = {"long": ("l1", "l2"), "s1": ("l1",), "s2": ("l2",)}
        capacities = {"l1": 9e9, "l2": 3e9}
        assert_parity(
            weighted_max_min(weights, paths, capacities),
            weighted_max_min(weights, paths, capacities, backend="vectorized"),
            scale=1e9,
        )

    def test_unused_links_ignored(self):
        weights = {0: 1.0}
        paths = {0: ("used",)}
        capacities = {"used": 1e9, "unused": 5e9}
        result = weighted_max_min(weights, paths, capacities, backend="vectorized")
        assert result[0] == pytest.approx(1e9)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            weighted_max_min({0: 1.0}, {0: ("l",)}, {"l": 1e9}, backend="gpu")
        with pytest.raises(ValueError):
            XwiFluidSimulator(FluidNetwork({"l": 1e9}), backend="gpu")

    def test_duplicate_link_paths_rejected(self):
        """A repeated link can't be represented in the incidence matrix, so
        both entry points refuse it instead of letting the backends diverge."""
        from repro.fluid.vectorized import weighted_max_min_vectorized

        with pytest.raises(ValueError, match="twice"):
            weighted_max_min({0: 1.0}, {0: ("l", "l")}, {"l": 1e9})
        with pytest.raises(ValueError, match="twice"):
            weighted_max_min({0: 1.0}, {0: ("l", "l")}, {"l": 1e9}, backend="vectorized")
        with pytest.raises(ValueError, match="twice"):
            weighted_max_min_vectorized({0: 1.0}, {0: ("l", "l")}, {"l": 1e9})
        with pytest.raises(ValueError, match="twice"):
            FluidFlow(0, ("l", "l"))

    def test_direct_vectorized_wrapper_validates(self):
        """The exported wrapper applies the same validation as the scalar API."""
        from repro.fluid.vectorized import weighted_max_min_vectorized

        with pytest.raises(ValueError):
            weighted_max_min_vectorized({0: -1.0}, {0: ("l",)}, {"l": 1e9})
        with pytest.raises(ValueError):
            weighted_max_min_vectorized({0: 1.0}, {1: ("l",)}, {"l": 1e9})
        with pytest.raises(KeyError):
            weighted_max_min_vectorized({0: 1.0}, {0: ("ghost",)}, {"l": 1e9})


class TestXwiBackendParity:
    @pytest.mark.parametrize(
        "params",
        [
            NumFabricParameters(),
            NumFabricParameters(eta=1.0),
            NumFabricParameters(eta=10.0),
            NumFabricParameters(beta=0.25),
            NumFabricParameters(beta=0.75),
            NumFabricParameters().slowed_down(2.0),
        ],
        ids=["table2-default", "eta-1", "eta-10", "beta-0.25", "beta-0.75", "slowed-2x"],
    )
    def test_table2_parameter_grid(self, params):
        """Parity must hold across the Table 2 parameter grid, not just defaults."""
        networks = make_pair({"a": 10e9, "b": 4e9, "c": 25e9})
        add_to_both(networks, 0, ("a", "b"), LogUtility(weight=2.0))
        add_to_both(networks, 1, ("b", "c"), AlphaFairUtility(alpha=2.0))
        add_to_both(networks, 2, ("a", "c"), WeightedAlphaFairUtility(weight=3.0, alpha=0.5))
        add_to_both(networks, 3, ("c",), FctUtility(flow_size=1e6))
        run_both(networks, 120, params=params)

    def test_utility_mix_including_bandwidth_functions(self):
        """Bandwidth-function utilities exercise the per-flow fallback path."""
        bwf = PiecewiseLinearBandwidthFunction([(0.0, 0.0), (1.0, 5e9), (2.0, 8e9)])
        networks = make_pair({"a": 10e9, "b": 6e9})
        add_to_both(networks, 0, ("a",), BandwidthFunctionUtility(bwf))
        add_to_both(networks, 1, ("a", "b"), LogUtility())
        add_to_both(networks, 2, ("b",), AlphaFairUtility(alpha=1.5))
        scalar, vectorized = run_both(networks, 80)
        compiled = vectorized._compiled
        assert compiled is not None and not compiled.vec_utils.fully_vectorized

    def test_multipath_flow_groups(self):
        """Resource-pooling groups (Sec. 6.3) follow the same heuristic."""
        networks = make_pair({"top": 10e9, "bottom": 10e9, "shared": 6e9})
        for network in networks:
            network.add_group(FlowGroup("g", LogUtility(weight=2.0)))
        add_to_both(networks, "g_top", ("top",), LogUtility(), group_id="g")
        add_to_both(networks, "g_bottom", ("bottom", "shared"), LogUtility(), group_id="g")
        add_to_both(networks, "solo", ("shared",), LogUtility())
        add_to_both(networks, "other", ("top",), LogUtility())
        run_both(networks, 120)

    def test_dynamic_arrivals_and_departures(self):
        """A churn trace: the compiled structure recompiles exactly per event."""
        networks = make_pair({"a": 10e9, "b": 4e9})
        add_to_both(networks, 0, ("a",), LogUtility())
        add_to_both(networks, 1, ("a", "b"), LogUtility(weight=2.0))
        scalar = XwiFluidSimulator(networks[0])
        vectorized = XwiFluidSimulator(networks[1], backend="vectorized")
        trace = [
            ("run", 25),
            ("add", 2, ("b",), AlphaFairUtility(alpha=2.0)),
            ("run", 25),
            ("add", 3, ("a", "b"), FctUtility(flow_size=5e5)),
            ("run", 25),
            ("remove", 1),
            ("run", 25),
            ("remove", 0),
            ("add", 4, ("a",), LogUtility(weight=0.5)),
            ("run", 40),
        ]
        for event in trace:
            if event[0] == "run":
                for _ in range(event[1]):
                    assert_parity(scalar.step().rates, vectorized.step().rates, scale=1e9)
            elif event[0] == "add":
                _, flow_id, path, utility = event
                networks[0].add_flow(FluidFlow(flow_id, path, copy.deepcopy(utility)))
                networks[1].add_flow(FluidFlow(flow_id, path, copy.deepcopy(utility)))
            else:
                networks[0].remove_flow(event[1])
                networks[1].remove_flow(event[1])

    def test_capacity_change_needs_no_recompile(self):
        """set_capacity must take effect immediately without a recompile."""
        networks = make_pair({"l": 10e9})
        add_to_both(networks, 0, ("l",), LogUtility())
        add_to_both(networks, 1, ("l",), LogUtility())
        scalar, vectorized = run_both(networks, 40)
        compiled_before = vectorized._compiled
        for network in networks:
            network.set_capacity("l", 2e9)
        for _ in range(60):
            assert_parity(scalar.step().rates, vectorized.step().rates, scale=1e9)
        assert vectorized._compiled is compiled_before
        assert sum(vectorized.last_rates.values()) == pytest.approx(2e9, rel=1e-6)

    def test_utility_rebinding_is_applied_in_place(self):
        """Assigning a new utility object between steps must not go stale.

        The compiled snapshot is *updated in place* (the rebound slot's
        parameters are re-batched), not rebuilt -- same answer, no
        O(links x flows) recompile.
        """
        networks = make_pair({"l": 1e9})
        add_to_both(networks, 0, ("l",), LogUtility())
        add_to_both(networks, 1, ("l",), LogUtility())
        scalar, vectorized = run_both(networks, 30)
        compiled_before = vectorized._compiled
        for network in networks:
            network.flow(0).utility = LogUtility(weight=9.0)
        for _ in range(60):
            assert_parity(scalar.step().rates, vectorized.step().rates, scale=1e9)
        assert vectorized._compiled is compiled_before
        assert vectorized.last_rates[0] == pytest.approx(9e8, rel=1e-3)

    def test_empty_network_step(self):
        vectorized = XwiFluidSimulator(FluidNetwork({"l": 1e9}), backend="vectorized")
        record = vectorized.step()
        assert record.rates == {}
        assert record.prices == {"l": 0.0}


class TestCompiledStructure:
    def test_recompile_only_on_churn(self):
        network = FluidNetwork({"l": 1e9})
        network.add_flow(FluidFlow(0, ("l",), LogUtility()))
        compiled = compile_network(network)
        assert compiled.is_current()
        network.set_capacity("l", 2e9)
        assert compiled.is_current()  # capacities are re-read, not frozen
        assert compiled.capacities_vector().tolist() == [2e9]
        network.add_flow(FluidFlow(1, ("l",), LogUtility()))
        assert not compiled.is_current()

    def test_incidence_matrix_shape_and_paths(self):
        network = FluidNetwork({"a": 1e9, "b": 2e9})
        network.add_flow(FluidFlow("f", ("a", "b"), LogUtility()))
        network.add_flow(FluidFlow("g", ("b",), LogUtility()))
        compiled = compile_network(network)
        assert compiled.incidence.shape == (2, 2)
        assert compiled.path_len.tolist() == [2.0, 1.0]
        assert compiled.path_capacities(compiled.capacities_vector()).tolist() == [1e9, 2e9]
