"""Incremental incidence compilation vs full recompiles.

``CompiledFluidNetwork.refresh`` replays the network's churn journal as
O(path) column edits (arrivals append a column, departures swap-remove
one).  These tests pin the contract the vectorized backends rely on: after
any sequence of arrivals/departures, the incrementally maintained arrays
are *identical* -- up to the documented slot permutation -- to a compile
from scratch, and the journal machinery degrades safely (full recompile)
whenever it cannot replay.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.utility import AlphaFairUtility, FctUtility, LogUtility
from repro.fluid.network import FlowGroup, FluidFlow, FluidNetwork
from repro.fluid.vectorized import compile_network

LINKS = {"a": 1e9, "b": 2e9, "c": 4e9, "d": 8e9}


def _utility(kind: int, parameter: float):
    if kind == 0:
        return LogUtility(weight=parameter)
    if kind == 1:
        return AlphaFairUtility(alpha=parameter)
    return FctUtility(flow_size=1e4 * parameter)


def assert_matches_full_compile(incremental, network):
    """The incremental snapshot must equal a fresh compile, per flow id."""
    full = compile_network(network)
    assert sorted(incremental.flow_ids, key=repr) == sorted(full.flow_ids, key=repr)
    assert incremental.version == full.version
    full_slot = {flow_id: j for j, flow_id in enumerate(full.flow_ids)}
    for slot, flow_id in enumerate(incremental.flow_ids):
        reference = full_slot[flow_id]
        np.testing.assert_array_equal(
            incremental.incidence[:, slot], full.incidence[:, reference]
        )
        np.testing.assert_array_equal(
            incremental.incidence_f[:, slot], full.incidence_f[:, reference]
        )
        assert incremental.path_len[slot] == full.path_len[reference]
        assert incremental.flows[slot] is full.flows[reference]
        assert incremental.vec_utils.utilities[slot] is full.vec_utils.utilities[reference]
    # Utility parameters: evaluate both on a per-slot-aligned rate vector.
    if incremental.flow_ids:
        rng = np.random.default_rng(0)
        rates_inc = rng.uniform(1e3, 1e9, size=len(incremental.flow_ids))
        rates_full = np.empty_like(rates_inc)
        for slot, flow_id in enumerate(incremental.flow_ids):
            rates_full[full_slot[flow_id]] = rates_inc[slot]
        marg_inc = incremental.vec_utils.marginal(rates_inc)
        marg_full = full.vec_utils.marginal(rates_full)
        value_inc = incremental.vec_utils.value(rates_inc)
        value_full = full.vec_utils.value(rates_full)
        for slot, flow_id in enumerate(incremental.flow_ids):
            assert marg_inc[slot] == marg_full[full_slot[flow_id]]
            assert value_inc[slot] == value_full[full_slot[flow_id]]
        capacities = incremental.capacities_vector()
        path_inc = incremental.path_capacities(capacities)
        path_full = full.path_capacities(full.capacities_vector())
        for slot, flow_id in enumerate(incremental.flow_ids):
            assert path_inc[slot] == path_full[full_slot[flow_id]]


@st.composite
def churn_programs(draw):
    """A sequence of add/remove operations over a fixed 4-link network."""
    n_ops = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for _ in range(n_ops):
        ops.append(
            (
                draw(st.sampled_from(["add", "add", "remove"])),
                draw(st.integers(min_value=0, max_value=2)),  # utility kind
                draw(st.floats(min_value=0.5, max_value=4.0)),  # utility parameter
                draw(st.integers(min_value=0, max_value=2**16)),  # path seed
            )
        )
    return ops


class TestIncrementalEqualsFullCompile:
    @settings(max_examples=60, deadline=None)
    @given(program=churn_programs())
    def test_randomized_add_remove_sequences(self, program):
        network = FluidNetwork(dict(LINKS))
        compiled = compile_network(network)
        next_id = 0
        link_names = list(LINKS)
        for op, kind, parameter, path_seed in program:
            if op == "remove" and network.flows:
                victims = network.flow_ids
                network.remove_flow(victims[path_seed % len(victims)])
            else:
                length = 1 + path_seed % len(link_names)
                start = path_seed % len(link_names)
                path = tuple(
                    link_names[(start + i) % len(link_names)] for i in range(length)
                )
                network.add_flow(FluidFlow(next_id, path, _utility(kind, parameter)))
                next_id += 1
            assert compiled.refresh() == "updated"
            assert_matches_full_compile(compiled, network)

    def test_every_churn_step_stays_in_sync(self):
        network = FluidNetwork(dict(LINKS))
        compiled = compile_network(network)
        for i in range(8):
            network.add_flow(FluidFlow(i, ("a", "b"), LogUtility(weight=i + 1.0)))
        assert compiled.refresh() == "updated"
        assert_matches_full_compile(compiled, network)
        for i in (1, 3, 5):
            network.remove_flow(i)
        assert compiled.refresh() == "updated"
        assert_matches_full_compile(compiled, network)
        assert compiled.refresh() == "current"


class TestRefreshFallbacks:
    def test_journal_overflow_forces_recompile(self):
        from repro.fluid import network as network_module

        network = FluidNetwork(dict(LINKS))
        compiled = compile_network(network)
        for i in range(network_module._JOURNAL_LIMIT + 10):
            network.add_flow(FluidFlow(i, ("a",), LogUtility()))
        assert network.churn_since(compiled.version) is None
        assert compiled.refresh() == "stale"

    def test_group_churn_forces_recompile(self):
        network = FluidNetwork(dict(LINKS))
        compiled = compile_network(network)
        network.add_group(FlowGroup("g", LogUtility()))
        assert compiled.refresh() == "stale"

    def test_grouped_member_arrival_forces_recompile(self):
        network = FluidNetwork(dict(LINKS))
        network.add_group(FlowGroup("g", LogUtility()))
        compiled = compile_network(network)
        network.add_flow(FluidFlow("sub", ("a",), LogUtility(), group_id="g"))
        assert compiled.refresh() == "stale"

    def test_utility_rebind_updates_in_place(self):
        network = FluidNetwork(dict(LINKS))
        network.add_flow(FluidFlow(0, ("a",), LogUtility()))
        compiled = compile_network(network)
        network.flow(0).utility = LogUtility(weight=7.0)
        assert compiled.refresh() == "updated"
        assert compiled.vec_utils.marginal(np.array([1.0]))[0] == pytest.approx(7.0)
        assert_matches_full_compile(compiled, network)


class TestChurnJournal:
    def test_events_in_order(self):
        network = FluidNetwork(dict(LINKS))
        base = network.topology_version
        flow = network.add_flow(FluidFlow(0, ("a",), LogUtility()))
        network.remove_flow(0)
        events = network.churn_since(base)
        assert [(op, payload.flow_id) for _, op, payload in events] == [
            ("add", 0),
            ("remove", 0),
        ]
        assert flow is events[0][2]

    def test_no_churn_is_empty(self):
        network = FluidNetwork(dict(LINKS))
        assert network.churn_since(network.topology_version) == []

    def test_future_version_is_unreplayable(self):
        network = FluidNetwork(dict(LINKS))
        assert network.churn_since(network.topology_version + 1) is None
