"""Tests for the NUM Oracle (ground-truth solver)."""

import random

import pytest

from repro.core.bandwidth_function import PiecewiseLinearBandwidthFunction
from repro.core.config import SimulationParameters
from repro.core.utility import (
    AlphaFairUtility,
    BandwidthFunctionUtility,
    FctUtility,
    LogUtility,
    WeightedAlphaFairUtility,
)
from repro.fluid.network import FlowGroup, FluidFlow, FluidNetwork
from repro.fluid.oracle import (
    PersistentDualSolver,
    alpha_fair_single_link,
    estimate_price_scale,
    proportional_fair_single_link,
    solve_num,
    solve_num_multipath,
)
from repro.fluid.topologies import leaf_spine


class TestSolveNumSingleLink:
    def test_proportional_fairness_splits_equally(self):
        network = FluidNetwork.single_link(10e9, 4)
        result = solve_num(network)
        for rate in result.rates.values():
            assert rate == pytest.approx(2.5e9, rel=1e-3)
        assert result.converged

    def test_weighted_proportional_fairness(self):
        network = FluidNetwork({"l": 12e9})
        network.add_flow(FluidFlow("heavy", ("l",), LogUtility(weight=2.0)))
        network.add_flow(FluidFlow("light", ("l",), LogUtility(weight=1.0)))
        result = solve_num(network)
        assert result.rates["heavy"] == pytest.approx(8e9, rel=1e-3)
        assert result.rates["light"] == pytest.approx(4e9, rel=1e-3)

    def test_alpha_two_fairness_single_link_is_weighted_split(self):
        network = FluidNetwork({"l": 10e9})
        network.add_flow(FluidFlow("a", ("l",), WeightedAlphaFairUtility(weight=1.0, alpha=2.0)))
        network.add_flow(FluidFlow("b", ("l",), WeightedAlphaFairUtility(weight=3.0, alpha=2.0)))
        result = solve_num(network)
        assert result.rates["a"] == pytest.approx(2.5e9, rel=1e-3)
        assert result.rates["b"] == pytest.approx(7.5e9, rel=1e-3)

    def test_fct_utility_prioritizes_short_flow(self):
        network = FluidNetwork({"l": 10e9})
        network.add_flow(FluidFlow("short", ("l",), FctUtility(flow_size=10e3)))
        network.add_flow(FluidFlow("long", ("l",), FctUtility(flow_size=10e6)))
        result = solve_num(network)
        assert result.rates["short"] > result.rates["long"]
        # With epsilon = 0.125 the rate ratio is (size ratio)^(1/eps), i.e. huge;
        # the short flow gets essentially the whole link.
        assert result.rates["short"] == pytest.approx(10e9, rel=0.05)

    def test_single_flow_gets_capacity(self):
        network = FluidNetwork.single_link(5e9, 1)
        result = solve_num(network)
        assert result.rates[0] == pytest.approx(5e9, rel=1e-3)

    def test_empty_network(self):
        network = FluidNetwork({"l": 1e9})
        result = solve_num(network)
        assert result.rates == {}
        assert result.converged


class TestSolveNumMultiLink:
    def test_parking_lot_proportional_fairness(self):
        """Known closed form: long flow gets C/3, each short flow gets 2C/3."""
        network = FluidNetwork({"l1": 9e9, "l2": 9e9})
        network.add_flow(FluidFlow("long", ("l1", "l2"), LogUtility()))
        network.add_flow(FluidFlow("s1", ("l1",), LogUtility()))
        network.add_flow(FluidFlow("s2", ("l2",), LogUtility()))
        result = solve_num(network)
        assert result.rates["long"] == pytest.approx(3e9, rel=1e-2)
        assert result.rates["s1"] == pytest.approx(6e9, rel=1e-2)
        assert result.rates["s2"] == pytest.approx(6e9, rel=1e-2)

    def test_allocation_is_feasible(self):
        network = FluidNetwork({"a": 10e9, "b": 3e9, "c": 7e9})
        network.add_flow(FluidFlow(1, ("a", "b"), LogUtility()))
        network.add_flow(FluidFlow(2, ("b", "c"), AlphaFairUtility(alpha=2.0)))
        network.add_flow(FluidFlow(3, ("a", "c"), LogUtility(weight=2.0)))
        network.add_flow(FluidFlow(4, ("a",), AlphaFairUtility(alpha=0.5)))
        result = solve_num(network)
        assert network.is_feasible(result.rates, tolerance=1e-3)

    def test_prices_nonzero_only_when_constraining(self):
        network = FluidNetwork({"tight": 1e9, "loose": 100e9})
        network.add_flow(FluidFlow("f", ("tight", "loose"), LogUtility()))
        result = solve_num(network)
        assert result.prices["tight"] > 0.0
        assert result.prices["loose"] == pytest.approx(0.0, abs=1e-12)

    def test_rejects_multipath_groups(self):
        network = FluidNetwork({"l": 1e9})
        network.add_group(FlowGroup("g", LogUtility()))
        network.add_flow(FluidFlow("sub", ("l",), LogUtility(), group_id="g"))
        with pytest.raises(ValueError):
            solve_num(network)

    def test_objective_not_worse_than_maxmin(self):
        """The NUM optimum must dominate any feasible allocation's objective."""
        from repro.fluid.maxmin import max_min

        network = FluidNetwork({"a": 10e9, "b": 4e9})
        network.add_flow(FluidFlow(1, ("a", "b"), LogUtility()))
        network.add_flow(FluidFlow(2, ("a",), LogUtility()))
        network.add_flow(FluidFlow(3, ("b",), LogUtility()))
        result = solve_num(network)
        maxmin_rates = max_min({f.flow_id: f.path for f in network.flows}, network.capacities)
        assert network.total_utility(result.rates) >= network.total_utility(maxmin_rates) - 1e-6


class TestSolveNumMultipath:
    def test_two_path_pooling_uses_both_paths(self):
        network = FluidNetwork({"p1": 4e9, "p2": 6e9})
        network.add_group(FlowGroup("g", LogUtility()))
        network.add_flow(FluidFlow("sub1", ("p1",), LogUtility(), group_id="g"))
        network.add_flow(FluidFlow("sub2", ("p2",), LogUtility(), group_id="g"))
        network.group("g").member_ids = ("sub1", "sub2")
        result = solve_num_multipath(network)
        aggregate = result.rates["sub1"] + result.rates["sub2"]
        assert aggregate == pytest.approx(10e9, rel=1e-2)

    def test_pooling_shares_common_bottleneck_fairly(self):
        """Two groups share a middle link plus private links (Fig. 10 shape)."""
        network = FluidNetwork({"top": 5e9, "middle": 10e9, "bottom": 5e9})
        network.add_group(FlowGroup("g1", LogUtility()))
        network.add_group(FlowGroup("g2", LogUtility()))
        network.add_flow(FluidFlow("g1_top", ("top",), LogUtility(), group_id="g1"))
        network.add_flow(FluidFlow("g1_mid", ("middle",), LogUtility(), group_id="g1"))
        network.add_flow(FluidFlow("g2_mid", ("middle",), LogUtility(), group_id="g2"))
        network.add_flow(FluidFlow("g2_bot", ("bottom",), LogUtility(), group_id="g2"))
        network.group("g1").member_ids = ("g1_top", "g1_mid")
        network.group("g2").member_ids = ("g2_mid", "g2_bot")
        result = solve_num_multipath(network)
        g1 = result.rates["g1_top"] + result.rates["g1_mid"]
        g2 = result.rates["g2_mid"] + result.rates["g2_bot"]
        # Symmetric problem: both aggregates should be equal and fill the network.
        assert g1 == pytest.approx(g2, rel=0.02)
        assert g1 + g2 == pytest.approx(20e9, rel=0.02)

    def test_feasibility(self):
        network = FluidNetwork({"p1": 2e9, "p2": 3e9})
        network.add_group(FlowGroup("g", AlphaFairUtility(alpha=1.0)))
        network.add_flow(FluidFlow("s1", ("p1",), LogUtility(), group_id="g"))
        network.add_flow(FluidFlow("s2", ("p2",), LogUtility(), group_id="g"))
        network.group("g").member_ids = ("s1", "s2")
        result = solve_num_multipath(network)
        assert network.is_feasible(result.rates, tolerance=1e-3)


def _max_rel_rate_diff(a, b):
    return max(abs(a[k] - b[k]) / max(abs(a[k]), 1.0) for k in a)


def _parity_grid():
    """Well-conditioned problems where both backends pin the same optimum."""
    cases = {}

    single_log = FluidNetwork.single_link(
        10e9, 5, [LogUtility(weight=w) for w in (1.0, 2.0, 3.0, 0.5, 1.5)]
    )
    cases["single_link_log"] = single_log

    for alpha in (0.5, 2.0):
        single_alpha = FluidNetwork({"l": 10e9})
        for i in range(4):
            single_alpha.add_flow(FluidFlow(i, ("l",), AlphaFairUtility(alpha=alpha)))
        cases[f"single_link_alpha_{alpha}"] = single_alpha

    single_walpha = FluidNetwork({"l": 12e9})
    single_walpha.add_flow(FluidFlow("a", ("l",), WeightedAlphaFairUtility(1.0, 2.0)))
    single_walpha.add_flow(FluidFlow("b", ("l",), WeightedAlphaFairUtility(3.0, 2.0)))
    cases["single_link_weighted"] = single_walpha

    single_fct = FluidNetwork({"l": 10e9})
    for i, size in enumerate((1e4, 1e5, 1e6)):
        single_fct.add_flow(FluidFlow(i, ("l",), FctUtility(flow_size=size, epsilon=0.5)))
    cases["single_link_fct"] = single_fct

    parking = FluidNetwork({"l1": 9e9, "l2": 9e9})
    parking.add_flow(FluidFlow("long", ("l1", "l2"), LogUtility()))
    parking.add_flow(FluidFlow("s1", ("l1",), LogUtility()))
    parking.add_flow(FluidFlow("s2", ("l2",), AlphaFairUtility(alpha=2.0)))
    cases["parking_lot_mixed"] = parking

    params = SimulationParameters(num_servers=16, num_leaves=4, num_spines=2)
    fabric = leaf_spine(params)
    rng = random.Random(5)
    for f in range(40):
        src, dst = rng.sample(range(16), 2)
        fabric.network.add_flow(
            FluidFlow(
                f,
                fabric.path(src, dst, spine=f % 2),
                LogUtility(weight=rng.uniform(0.5, 3.0)),
            )
        )
    cases["leaf_spine_log"] = fabric.network
    return cases


class TestBackendParity:
    """The vectorized dual must match the scalar reference on the parity grid."""

    @pytest.mark.parametrize("name", sorted(_parity_grid()))
    def test_rates_match_within_1e9(self, name):
        network = _parity_grid()[name]
        scalar = solve_num(network, backend="scalar")
        vectorized = solve_num(network, backend="vectorized")
        assert _max_rel_rate_diff(scalar.rates, vectorized.rates) <= 1e-9
        assert abs(scalar.objective - vectorized.objective) <= 1e-9 * max(
            abs(scalar.objective), 1.0
        )
        assert scalar.converged == vectorized.converged

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            solve_num(FluidNetwork.single_link(1e9, 1), backend="quantum")
        with pytest.raises(ValueError):
            estimate_price_scale(FluidNetwork.single_link(1e9, 1), backend="quantum")

    def test_price_scale_estimates_match(self):
        for name, network in _parity_grid().items():
            scalar = estimate_price_scale(network, backend="scalar")
            vectorized = estimate_price_scale(network, backend="vectorized")
            assert scalar.keys() == vectorized.keys(), name
            for link, value in scalar.items():
                assert vectorized[link] == pytest.approx(value, rel=1e-12), (name, link)

    def test_unused_links_priced_zero_and_excluded(self):
        network = FluidNetwork({"used": 1e9, "idle": 5e9})
        network.add_flow(FluidFlow("f", ("used",), LogUtility()))
        for backend in ("scalar", "vectorized"):
            result = solve_num(network, backend=backend)
            assert result.prices["idle"] == 0.0
            assert result.rates["f"] == pytest.approx(1e9, rel=1e-3)

    def test_warm_start_reaches_same_optimum(self):
        network = FluidNetwork({"l1": 9e9, "l2": 9e9})
        network.add_flow(FluidFlow("long", ("l1", "l2"), LogUtility()))
        network.add_flow(FluidFlow("s1", ("l1",), LogUtility(weight=2.0)))
        network.add_flow(FluidFlow("s2", ("l2",), LogUtility()))
        cold = solve_num(network)
        assert cold.converged
        warm = solve_num(network, initial_prices=cold.prices)
        assert warm.converged
        # Warm starts only change where the solver *starts*: it lands on the
        # same optimum (to solver precision) in fewer iterations.
        assert _max_rel_rate_diff(cold.rates, warm.rates) <= 1e-4
        assert warm.iterations < cold.iterations

    def test_cached_price_scale_is_conditioning_only(self):
        # A stale scale (here: computed before half the flows existed) must
        # still converge to the same optimum -- it only preconditions.
        network = FluidNetwork({"l": 10e9})
        for i in range(3):
            network.add_flow(FluidFlow(i, ("l",), LogUtility()))
        stale_scale = estimate_price_scale(network)
        for i in range(3, 6):
            network.add_flow(FluidFlow(i, ("l",), LogUtility()))
        result = solve_num(network, price_scale=stale_scale)
        for rate in result.rates.values():
            assert rate == pytest.approx(10e9 / 6, rel=1e-6)

    def test_price_scale_for_unseen_links_falls_back_to_median(self):
        network = FluidNetwork({"a": 10e9, "b": 10e9})
        network.add_flow(FluidFlow(0, ("a",), LogUtility()))
        scale_before = estimate_price_scale(network)
        assert "b" not in scale_before
        network.add_flow(FluidFlow(1, ("b",), LogUtility()))
        result = solve_num(network, price_scale=scale_before)
        assert result.rates[0] == pytest.approx(10e9, rel=1e-3)
        assert result.rates[1] == pytest.approx(10e9, rel=1e-3)

    def test_safeguard_off_matches_on_for_well_conditioned(self):
        network = _parity_grid()["single_link_log"]
        guarded = solve_num(network, safeguard=True)
        unguarded = solve_num(network, safeguard=False)
        assert _max_rel_rate_diff(guarded.rates, unguarded.rates) <= 1e-9

    def test_fallback_utility_flows_use_scalar_path(self):
        # BandwidthFunctionUtility has no closed-form batched family, so the
        # vectorized backend must route it through per-flow scalar calls.
        bwf = PiecewiseLinearBandwidthFunction([(0.0, 0.0), (2.0, 6e9), (4.0, 8e9)])
        network = FluidNetwork({"l": 10e9})
        network.add_flow(FluidFlow("bw", ("l",), BandwidthFunctionUtility(bwf)))
        network.add_flow(FluidFlow("log", ("l",), LogUtility()))
        scalar = solve_num(network, backend="scalar")
        vectorized = solve_num(network, backend="vectorized")
        assert _max_rel_rate_diff(scalar.rates, vectorized.rates) <= 1e-9


def _cold_scipy(network, **kwargs):
    """The persistent solver's parity reference: a *tightly converged* cold
    scipy solve.  (At the default ftol, L-BFGS-B stops up to ~1e-4 away
    from its own tight solution on multi-link instances, so comparing
    against a loosely converged reference would measure scipy's stopping
    slack, not the persistent solver's accuracy.)"""
    return solve_num(
        network, solver="scipy", tolerance=1e-14, max_iterations=20000,
        safeguard=False, **kwargs,
    )


#: Grid cases whose dual is so flat near the optimum that float64 cannot
#: pin the rate vector: objectives agree to ~1e-14 while rates drift.  On
#: these, even scipy's own warm-vs-cold drift is ~1e-3 / ~7e-7, so the
#: churn gate checks the objective (1e-8 relative) and feasibility instead
#: of the 1e-6 rate gate used everywhere else.
_FLAT_DUAL_CASES = {"parking_lot_mixed", "leaf_spine_log"}


class TestPersistentDualSolver:
    """Warm persistent solves vs cold scipy solves across churn traces."""

    def _churn_trace(self, network):
        """Remove the first half of the flows one by one, then re-add them."""
        flows = list(network.flows)
        events = []
        for flow in flows[: len(flows) // 2]:
            events.append(("remove", flow))
        for _, flow in list(events):
            events.append(("add", flow))
        return events

    @pytest.mark.parametrize("name", sorted(_parity_grid()))
    def test_churn_trace_matches_cold_scipy(self, name):
        network = _parity_grid()[name]
        solver = PersistentDualSolver()
        for op, flow in self._churn_trace(network):
            if op == "remove":
                network.remove_flow(flow.flow_id)
            else:
                network.add_flow(flow)
            if not network.flows:
                continue
            warm = solver.solve(network)
            cold = _cold_scipy(network)
            assert network.is_feasible(warm.rates, tolerance=1e-6)
            assert abs(warm.objective - cold.objective) <= 1e-8 * max(
                abs(cold.objective), 1.0
            )
            if name not in _FLAT_DUAL_CASES:
                assert _max_rel_rate_diff(cold.rates, warm.rates) <= 1e-6

    def test_multi_bottleneck_churn_trace(self):
        """Random arrivals/departures on a leaf-spine-like core: 1e-6 rates."""
        rng = random.Random(1)
        capacities = {f"leaf{i}": 10e9 for i in range(8)}
        capacities.update({f"spine{i}": 40e9 for i in range(4)})
        network = FluidNetwork(capacities)
        next_id = 0
        for _ in range(100):
            src, dst = rng.sample(range(8), 2)
            path = (f"leaf{src}", f"spine{rng.randrange(4)}", f"leaf{dst}")
            network.add_flow(
                FluidFlow(next_id, path, LogUtility(weight=rng.uniform(0.5, 4.0)))
            )
            next_id += 1
        solver = PersistentDualSolver()
        for _ in range(40):
            if rng.random() < 0.5 and len(network.flows) > 20:
                network.remove_flow(rng.choice(network.flow_ids))
            else:
                src, dst = rng.sample(range(8), 2)
                path = (f"leaf{src}", f"spine{rng.randrange(4)}", f"leaf{dst}")
                network.add_flow(
                    FluidFlow(next_id, path, LogUtility(weight=rng.uniform(0.5, 4.0)))
                )
                next_id += 1
            warm = solver.solve(network)
            cold = _cold_scipy(network)
            assert _max_rel_rate_diff(cold.rates, warm.rates) <= 1e-6
            assert warm.converged

    def test_one_shot_spg_solver_matches_scipy(self):
        for name, network in _parity_grid().items():
            spg = solve_num(network, solver="spg", safeguard=False)
            cold = _cold_scipy(network)
            assert abs(spg.objective - cold.objective) <= 1e-8 * max(
                abs(cold.objective), 1.0
            ), name
            if name not in _FLAT_DUAL_CASES:
                assert _max_rel_rate_diff(cold.rates, spg.rates) <= 1e-6, name

    def test_rejects_unknown_solver(self):
        with pytest.raises(ValueError):
            solve_num(FluidNetwork.single_link(1e9, 1), solver="quantum")

    def test_empty_network(self):
        network = FluidNetwork({"l": 1e9})
        solver = PersistentDualSolver()
        result = solver.solve(network)
        assert result.rates == {} and result.converged

    def test_rejects_multipath_groups(self):
        network = FluidNetwork({"l": 1e9})
        network.add_group(FlowGroup("g", LogUtility()))
        network.add_flow(FluidFlow("sub", ("l",), LogUtility(), group_id="g"))
        with pytest.raises(ValueError):
            PersistentDualSolver().solve(network)

    def test_rebinding_network_resets_state(self):
        solver = PersistentDualSolver()
        first = FluidNetwork.single_link(10e9, 4)
        solver.solve(first)
        second = FluidNetwork.single_link(8e9, 2)
        result = solver.solve(second)
        for rate in result.rates.values():
            assert rate == pytest.approx(4e9, rel=1e-6)

    def test_utility_rebind_is_picked_up(self):
        network = FluidNetwork({"l": 10e9})
        network.add_flow(FluidFlow(0, ("l",), LogUtility()))
        network.add_flow(FluidFlow(1, ("l",), LogUtility()))
        solver = PersistentDualSolver()
        before = solver.solve(network)
        assert before.rates[0] == pytest.approx(5e9, rel=1e-6)
        network.flow(0).utility = LogUtility(weight=9.0)
        after = solver.solve(network)
        assert after.rates[0] == pytest.approx(9e9, rel=1e-3)

    def test_safeguard_falls_back_to_maxmin_quality(self):
        # Steep FCT mix: the safeguarded solve must never be worse than
        # max-min (the _finish contract, exercised through the persistent
        # path).
        from repro.fluid.maxmin import max_min

        network = FluidNetwork({"l": 10e9})
        for i, size in enumerate((1e4, 1e6, 1e8)):
            network.add_flow(FluidFlow(i, ("l",), FctUtility(flow_size=size)))
        solver = PersistentDualSolver(safeguard=True)
        result = solver.solve(network)
        maxmin_rates = max_min(
            {f.flow_id: f.path for f in network.flows}, network.capacities
        )
        assert network.total_utility(result.rates) >= (
            network.total_utility(maxmin_rates) - 1e-6
        )


class TestClosedForms:
    def test_proportional_fair_single_link(self):
        assert proportional_fair_single_link(12.0, 4) == [3.0, 3.0, 3.0, 3.0]
        assert proportional_fair_single_link(12.0, 0) == []

    def test_alpha_fair_single_link(self):
        rates = alpha_fair_single_link(10.0, [1.0, 4.0], alpha=2.0)
        assert rates[0] == pytest.approx(2.0)
        assert rates[1] == pytest.approx(8.0)

    def test_alpha_fair_requires_positive_alpha(self):
        with pytest.raises(ValueError):
            alpha_fair_single_link(10.0, [1.0], alpha=0.0)
