"""Tests for :mod:`repro.fluid.kernels`: probe, fallback, and NumPy parity.

Three layers, per the compiled-kernel contract:

* **Probe/fallback** -- ``HAVE_NUMBA`` is an importable boolean; without
  numba a ``kernel="numba"`` request resolves to ``"numpy"`` with exactly
  one process-wide warning and the dispatchers return *bit-identical*
  results to an explicit ``kernel="numpy"`` call (they run the same code).
* **Property parity** -- the kernel algorithms (exercised through their
  pure-Python twins, the same function objects that get jitted when numba
  is installed) match the NumPy reference paths on randomized and
  degenerate instances: zero-capacity links, tie-heavy capacities,
  single-flow networks, empty flow sets (waterfill, 1e-9), and mixed
  closed-form utility populations (fused dual, 1e-6).
* **Inner-solver grid** -- ``inner="lbfgs"`` and ``inner="spg"`` warm
  churned solves both match a tightly converged cold scipy solve to the
  oracle's 1e-6 rate gate.
"""

import random
import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.utility import (
    AlphaFairUtility,
    FctUtility,
    LogUtility,
    WeightedAlphaFairUtility,
)
from repro.fluid import kernels, oracle
from repro.fluid.network import FluidFlow, FluidNetwork
from repro.fluid.oracle import PersistentDualSolver, solve_num
from repro.fluid.vectorized import compile_network, waterfill_arrays
from repro.fluid.xwi import XwiFluidSimulator

seeds = st.integers(min_value=0, max_value=2**32 - 1)


# -- probe / fallback ---------------------------------------------------------


class TestProbeAndFallback:
    def test_have_numba_is_a_bool(self):
        assert isinstance(kernels.HAVE_NUMBA, bool)

    def test_explicit_backends_resolve_to_themselves(self):
        assert kernels.resolve_kernel("numpy") == "numpy"
        if kernels.HAVE_NUMBA:
            assert kernels.resolve_kernel("numba") == "numba"

    def test_env_var_drives_default(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "numpy")
        assert kernels.resolve_kernel(None) == "numpy"
        assert kernels.resolve_kernel("auto") == "numpy"
        monkeypatch.delenv(kernels.KERNEL_ENV_VAR)
        assert kernels.resolve_kernel(None) == "numpy"
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "fortran")
        with pytest.raises(ValueError):
            kernels.resolve_kernel(None)

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ValueError):
            kernels.resolve_kernel("cuda")

    @pytest.mark.skipif(kernels.HAVE_NUMBA, reason="fallback path needs numba absent")
    def test_numba_request_warns_once_then_degrades_silently(self):
        saved = kernels._FALLBACK_WARNED
        try:
            kernels._FALLBACK_WARNED = False
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                assert kernels.resolve_kernel("numba") == "numpy"
                assert kernels.resolve_kernel("numba") == "numpy"
            runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
            assert len(runtime) == 1
            assert "numba" in str(runtime[0].message)
        finally:
            kernels._FALLBACK_WARNED = saved

    @pytest.mark.skipif(kernels.HAVE_NUMBA, reason="fallback path needs numba absent")
    def test_fallback_waterfill_is_bit_identical_to_numpy(self):
        incidence, weights, capacities = _random_waterfill_instance(
            7, n_links=5, n_flows=8, zero_cap=True, tie_heavy=False
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            requested = waterfill_arrays(
                incidence, incidence.astype(float), weights, capacities, kernel="numba"
            )
        reference = waterfill_arrays(
            incidence, incidence.astype(float), weights, capacities, kernel="numpy"
        )
        assert np.array_equal(requested, reference)

    @pytest.mark.skipif(kernels.HAVE_NUMBA, reason="fallback path needs numba absent")
    def test_fallback_simulator_and_solver_select_numpy(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            simulator = XwiFluidSimulator(
                FluidNetwork.single_link(1e9, 2), backend="vectorized", kernel="numba"
            )
            solver = PersistentDualSolver(kernel="numba")
        assert simulator.kernel == "numpy"
        assert solver.kernel == "numpy"


# -- waterfill kernel parity --------------------------------------------------


def _random_waterfill_instance(seed, n_links, n_flows, zero_cap, tie_heavy):
    rng = np.random.RandomState(seed)
    incidence = rng.rand(n_links, n_flows) < 0.45
    for j in range(n_flows):
        if not incidence[:, j].any():
            incidence[rng.randint(n_links), j] = True
    if tie_heavy:
        # Many identical capacities: exact tie groups at one level.
        capacities = np.full(n_links, 10.0)
    else:
        capacities = rng.uniform(1.0, 100.0, n_links)
    if zero_cap:
        capacities[rng.randint(n_links)] = 0.0
    weights = rng.uniform(0.1, 10.0, n_flows)
    return incidence, weights, capacities


def _assert_waterfill_parity(incidence, weights, capacities, batch_ties):
    expected_stats: dict = {}
    expected = waterfill_arrays(
        incidence, incidence.astype(float), weights, capacities,
        batch_ties=batch_ties, stats=expected_stats,
    )
    rates, rounds, link_level = kernels.waterfill_csr(
        *kernels.build_csr(incidence), weights, capacities,
        batch_ties=batch_ties, jit=False,
    )
    scale = float(capacities.max(initial=1.0))
    np.testing.assert_allclose(rates, expected, rtol=1e-9, atol=1e-9 * scale)
    assert rounds >= 1 or not weights.size
    # Distinct frozen levels match the NumPy accounting (round counts may
    # differ: the kernel uses the wave schedule at every fabric size).
    frozen = link_level[np.isfinite(link_level)]
    assert int(np.unique(frozen).size) == expected_stats["levels"]


class TestWaterfillKernelParity:
    @given(
        seed=seeds,
        n_links=st.integers(min_value=1, max_value=6),
        n_flows=st.integers(min_value=1, max_value=9),
        batch_ties=st.booleans(),
        zero_cap=st.booleans(),
        tie_heavy=st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_numpy_on_random_instances(
        self, seed, n_links, n_flows, batch_ties, zero_cap, tie_heavy
    ):
        incidence, weights, capacities = _random_waterfill_instance(
            seed, n_links, n_flows, zero_cap, tie_heavy
        )
        _assert_waterfill_parity(incidence, weights, capacities, batch_ties)

    def test_single_flow_single_link(self):
        incidence = np.ones((1, 1), dtype=bool)
        _assert_waterfill_parity(incidence, np.array([2.0]), np.array([5.0]), True)

    def test_empty_flow_set(self):
        incidence = np.zeros((3, 0), dtype=bool)
        weights = np.zeros(0)
        capacities = np.array([1.0, 2.0, 3.0])
        rates, rounds, link_level = kernels.waterfill_csr(
            *kernels.build_csr(incidence), weights, capacities, jit=False
        )
        assert rates.size == 0 and rounds == 0
        assert np.all(np.isnan(link_level))

    def test_all_links_zero_capacity(self):
        incidence = np.ones((2, 3), dtype=bool)
        rates, _, _ = kernels.waterfill_csr(
            *kernels.build_csr(incidence),
            np.ones(3), np.zeros(2), jit=False,
        )
        expected = waterfill_arrays(
            incidence, incidence.astype(float), np.ones(3), np.zeros(2)
        )
        np.testing.assert_allclose(rates, expected, atol=1e-12)

    def test_tie_heavy_batched_rounds_collapse(self):
        """Eight identical edge links freeze together under batch_ties."""
        n = 8
        incidence = np.eye(n, dtype=bool)
        _, rounds_batched, _ = kernels.waterfill_csr(
            *kernels.build_csr(incidence), np.ones(n), np.full(n, 4.0),
            batch_ties=True, jit=False,
        )
        _, rounds_single, _ = kernels.waterfill_csr(
            *kernels.build_csr(incidence), np.ones(n), np.full(n, 4.0),
            batch_ties=False, jit=False,
        )
        assert rounds_batched == 1
        assert rounds_single == n

    @pytest.mark.skipif(not kernels.HAVE_NUMBA, reason="jitted twin needs numba")
    def test_jitted_and_python_twins_agree(self):  # pragma: no cover
        incidence, weights, capacities = _random_waterfill_instance(
            3, n_links=6, n_flows=9, zero_cap=True, tie_heavy=False
        )
        csr = kernels.build_csr(incidence)
        jit = kernels.waterfill_csr(*csr, weights, capacities, jit=True)
        twin = kernels.waterfill_csr(*csr, weights, capacities, jit=False)
        assert np.array_equal(jit[0], twin[0]) and jit[1] == twin[1]


# -- fused dual kernel parity -------------------------------------------------


def _random_utility(rng):
    kind = rng.randint(4)
    if kind == 0:
        return LogUtility(weight=float(rng.uniform(0.5, 4.0)))
    if kind == 1:
        # Include alpha exactly 1.0 sometimes: the log-branch of the value.
        alpha = 1.0 if rng.rand() < 0.25 else float(rng.uniform(0.5, 3.0))
        return AlphaFairUtility(alpha=alpha)
    if kind == 2:
        alpha = 1.0 if rng.rand() < 0.25 else float(rng.uniform(0.5, 3.0))
        return WeightedAlphaFairUtility(weight=float(rng.uniform(0.5, 4.0)), alpha=alpha)
    return FctUtility(flow_size=float(rng.uniform(1e4, 1e7)))


def _random_fluid_network(seed, n_flows):
    rng = np.random.RandomState(seed)
    links = [f"l{i}" for i in range(4)]
    network = FluidNetwork({link: float(rng.uniform(1e9, 10e9)) for link in links})
    for fid in range(n_flows):
        k = rng.randint(1, 4)
        path = tuple(links[i] for i in rng.choice(4, size=k, replace=False))
        network.add_flow(FluidFlow(fid, path, _random_utility(rng)))
    return network


def _dual_closure_pair(network, rng):
    """(numpy_closure, twin_closure) over the same compiled active links."""
    compiled = compile_network(network)
    vec_utils = compiled.vec_utils
    caps_all = compiled.capacities_vector()
    active = compiled.incidence.any(axis=1) & (caps_all > 0.0)
    incidence = compiled.incidence[active]
    incidence_f = compiled.incidence_f[active]
    capacities = caps_all[active]
    path_caps = compiled.path_capacities(caps_all)
    floors = path_caps * oracle._MIN_RATE_FRACTION
    scale_vec = 1.0 / capacities * rng.uniform(0.5, 2.0, capacities.size)
    objective_scale = float(np.max(capacities) * np.median(scale_vec))

    def numpy_closure(z):
        prices = scale_vec * z
        path_prices = incidence_f.T @ prices
        rates = np.maximum(
            vec_utils.inverse_marginal_clipped(path_prices, path_caps), floors
        )
        value = float(
            prices @ capacities + vec_utils.value(rates).sum() - rates @ path_prices
        )
        gradient = scale_vec * (capacities - incidence_f @ rates)
        return value / objective_scale, gradient / objective_scale

    family = vec_utils.kernel_family_arrays()
    assert family is not None  # the generator only draws closed-form utilities
    link_ptr, link_cols, flow_ptr, flow_rows = kernels.build_csr(incidence)
    code = np.ascontiguousarray(family[0])
    p0, p1, p2, p3 = (np.ascontiguousarray(row) for row in family[1:])
    n_links, n_flows = incidence.shape
    prices_buf, rates_buf = np.empty(n_links), np.empty(n_flows)

    def twin_closure(z):
        gradient = np.empty(n_links)
        value = kernels.py_fused_dual_csr(
            np.ascontiguousarray(z), scale_vec, capacities,
            link_ptr, link_cols, flow_ptr, flow_rows,
            code, p0, p1, p2, p3,
            np.ascontiguousarray(path_caps), np.ascontiguousarray(floors),
            1.0 / objective_scale, prices_buf, rates_buf, gradient,
        )
        return float(value), gradient

    return numpy_closure, twin_closure, capacities.size


class TestFusedDualKernelParity:
    @given(seed=seeds, n_flows=st.integers(min_value=1, max_value=12))
    @settings(max_examples=80, deadline=None)
    def test_matches_numpy_closure(self, seed, n_flows):
        rng = np.random.RandomState(seed ^ 0x5EED)
        network = _random_fluid_network(seed, n_flows)
        numpy_closure, twin_closure, n_active = _dual_closure_pair(network, rng)
        for z in (
            np.zeros(n_active),  # boundary: every price clipped to the cap
            rng.uniform(0.0, 2.0, n_active),
            rng.uniform(0.0, 2.0, n_active) * (rng.rand(n_active) < 0.5),
        ):
            value_np, grad_np = numpy_closure(z)
            value_tw, grad_tw = twin_closure(z)
            ref = max(abs(value_np), 1.0)
            assert abs(value_tw - value_np) <= 1e-6 * ref
            np.testing.assert_allclose(
                grad_tw, grad_np, rtol=1e-6,
                atol=1e-6 * max(float(np.max(np.abs(grad_np), initial=0.0)), 1e-12),
            )

    def test_eligibility_excludes_noncompiled_utilities(self):
        from repro.core.bandwidth_function import PiecewiseLinearBandwidthFunction
        from repro.core.utility import BandwidthFunctionUtility

        network = FluidNetwork({"l": 1e9})
        network.add_flow(
            FluidFlow(
                0, ("l",),
                BandwidthFunctionUtility(
                    PiecewiseLinearBandwidthFunction([(0.0, 0.0), (1e9, 1.0)])
                ),
            )
        )
        compiled = compile_network(network)
        assert compiled.vec_utils.kernel_family_arrays() is None


# -- inner-solver parity grid -------------------------------------------------


def _churn_network(seed=5, n_flows=40):
    """Multi-bottleneck log-utility fabric: the rate-gate parity regime.

    Mixed alpha-fair populations land in the flat-dual regime where even a
    cold scipy solve cannot pin the rate vector (see ``_FLAT_DUAL_CASES``
    in ``test_oracle.py``); the inner-solver grid therefore runs on the
    log-utility fabric where the 1e-6 rate gate is meaningful.  Family
    coverage for the compiled dual lives in
    :class:`TestFusedDualKernelParity` above.
    """
    rng = random.Random(seed)
    capacities = {f"leaf{i}": 10e9 for i in range(6)}
    capacities.update({f"spine{i}": 40e9 for i in range(3)})
    network = FluidNetwork(capacities)
    for fid in range(n_flows):
        src, dst = rng.sample(range(6), 2)
        path = (f"leaf{src}", f"spine{rng.randrange(3)}", f"leaf{dst}")
        network.add_flow(
            FluidFlow(fid, path, LogUtility(weight=rng.uniform(0.5, 4.0)))
        )
    return network


def _max_rel_rate_diff(reference, other):
    return max(
        abs(other[fid] - rate) / max(abs(rate), 1e-12)
        for fid, rate in reference.items()
    )


def _cold_scipy(network):
    return solve_num(
        network, solver="scipy", tolerance=1e-14, max_iterations=20000, safeguard=False
    )


class TestInnerSolverParityGrid:
    """spg / lbfgs warm churned solves vs tightly converged cold scipy."""

    @pytest.mark.parametrize("inner", ["spg", "lbfgs"])
    def test_churn_trace_matches_cold_scipy(self, inner):
        network = _churn_network()
        solver = PersistentDualSolver(inner=inner)
        assert solver.inner == inner
        flows = list(network.flows)
        trace = [("remove", f) for f in flows[: len(flows) // 2]]
        trace += [("add", f) for _, f in list(trace)]
        for op, flow in trace:
            if op == "remove":
                network.remove_flow(flow.flow_id)
            else:
                network.add_flow(flow)
            warm = solver.solve(network)
            cold = _cold_scipy(network)
            assert network.is_feasible(warm.rates, tolerance=1e-6)
            assert _max_rel_rate_diff(cold.rates, warm.rates) <= 1e-6

    def test_one_shot_lbfgs_solver_matches_scipy(self):
        network = _churn_network(seed=9, n_flows=24)
        lbfgs = solve_num(network, solver="lbfgs", safeguard=False)
        cold = _cold_scipy(network)
        assert _max_rel_rate_diff(cold.rates, lbfgs.rates) <= 1e-6
        assert lbfgs.converged

    def test_lbfgs_carries_history_across_solves(self):
        network = _churn_network(seed=3, n_flows=20)
        solver = PersistentDualSolver(inner="lbfgs")
        solver.solve(network)
        assert len(solver._lbfgs_pairs) > 0
        solver.reset()
        assert len(solver._lbfgs_pairs) == 0

    def test_rejects_unknown_inner(self):
        with pytest.raises(ValueError):
            PersistentDualSolver(inner="newton")
