"""Graceful degradation: every solver path survives zero/near-zero capacity.

The fault subsystem (PR: fault-injection) can drive any link's capacity to
exactly ``0.0`` (hard failure) or to values like ``1e-12`` (deep
degradation).  These tests pin the contract for every allocation path:
finite prices, finite non-negative rates, flows crossing a dead link pinned
to zero -- no NaN, no inf, no ZeroDivisionError -- and warm solver state
surviving across the fault.
"""

import math

import numpy as np
import pytest

from repro.core.utility import LogUtility
from repro.fluid.dctcp import DctcpFluidSimulator
from repro.fluid.dgd import DgdFluidSimulator
from repro.fluid.maxmin import weighted_max_min
from repro.fluid.network import FluidFlow, FluidNetwork
from repro.fluid.oracle import PersistentDualSolver, solve_num
from repro.fluid.rcp import RcpStarFluidSimulator
from repro.fluid.vectorized import compile_max_min
from repro.fluid.xwi import XwiFluidSimulator

DEAD_CAPACITIES = [0.0, 1e-12]


def two_link_network(dead_capacity: float) -> FluidNetwork:
    """``shared`` stays healthy; ``dead`` is failed/near-dead.

    Flow ``a`` uses only the healthy link, ``b`` only the dead one and
    ``ab`` crosses both -- covering private, dead-only and mixed paths.
    """
    network = FluidNetwork({"shared": 10e9, "dead": 10e9})
    network.add_flow(FluidFlow("a", ("shared",), LogUtility()))
    network.add_flow(FluidFlow("b", ("dead",), LogUtility()))
    network.add_flow(FluidFlow("ab", ("shared", "dead"), LogUtility()))
    network.set_capacity("dead", dead_capacity)
    return network


def assert_finite_rates(rates, dead_capacity):
    for flow_id, rate in rates.items():
        assert math.isfinite(rate), f"{flow_id} rate is {rate}"
        assert rate >= 0.0
    # Flows crossing the dead link get (at most) its capacity.
    for flow_id in ("b", "ab"):
        if flow_id in rates:
            assert rates[flow_id] <= dead_capacity + 1e-9


def test_set_capacity_rejects_negative_but_allows_zero():
    network = FluidNetwork({"link": 10e9})
    network.set_capacity("link", 0.0)
    assert network.capacity("link") == 0.0
    with pytest.raises(ValueError):
        network.set_capacity("link", -1.0)


def test_set_capacity_bumps_capacity_version():
    network = FluidNetwork({"link": 10e9})
    before = network.capacity_version
    network.set_capacity("link", 0.0)
    assert network.capacity_version != before


@pytest.mark.parametrize("dead", DEAD_CAPACITIES)
def test_weighted_max_min_scalar_zero_capacity(dead):
    weights = {"a": 1.0, "b": 1.0, "ab": 1.0}
    paths = {"a": ("shared",), "b": ("dead",), "ab": ("shared", "dead")}
    rates = weighted_max_min(weights, paths, {"shared": 10e9, "dead": dead})
    assert_finite_rates(rates, dead)
    assert rates["a"] > 0.0


@pytest.mark.parametrize("dead", DEAD_CAPACITIES)
def test_waterfill_arrays_zero_capacity(dead):
    paths = {"a": ("shared",), "b": ("dead",), "ab": ("shared", "dead")}
    compiled = compile_max_min(paths, {"shared": 10e9, "dead": dead})
    rates = compiled.solve({"a": 1.0, "b": 1.0, "ab": 1.0})
    assert_finite_rates(rates, dead)
    # Parity with the scalar reference on the degenerate instance.
    scalar = weighted_max_min(
        {"a": 1.0, "b": 1.0, "ab": 1.0}, paths, {"shared": 10e9, "dead": dead}
    )
    for flow_id, rate in scalar.items():
        assert rates[flow_id] == pytest.approx(rate, abs=1e-6)


@pytest.mark.parametrize("dead", DEAD_CAPACITIES)
@pytest.mark.parametrize("backend", ["scalar", "vectorized"])
@pytest.mark.parametrize(
    "simulator_cls",
    [XwiFluidSimulator, DgdFluidSimulator, RcpStarFluidSimulator, DctcpFluidSimulator],
)
def test_fluid_simulators_survive_dead_link(simulator_cls, backend, dead):
    network = two_link_network(dead)
    simulator = simulator_cls(network, backend=backend)
    record = None
    for _ in range(30):
        record = simulator.step()
        assert_finite_rates(record.rates, dead)
    # Link-side state must stay finite too (prices / fair rates / windows).
    for attr in ("prices", "fair_rates"):
        state = getattr(simulator, attr, None)
        if state:
            for link, value in state.items():
                assert math.isfinite(value), f"{attr}[{link}] = {value}"
    # The healthy-only flow keeps making progress.
    assert record.rates["a"] > 0.0


@pytest.mark.parametrize("backend", ["scalar", "vectorized"])
def test_fluid_simulator_recovers_after_restore(backend):
    network = two_link_network(0.0)
    simulator = XwiFluidSimulator(network, backend=backend)
    for _ in range(20):
        simulator.step()
    network.set_capacity("dead", 10e9)
    record = None
    for _ in range(120):
        record = simulator.step()
    assert record.rates["b"] > 1e8  # the dead-link flow came back


@pytest.mark.parametrize("dead", DEAD_CAPACITIES)
@pytest.mark.parametrize("backend", ["scalar", "vectorized"])
def test_solve_num_zero_capacity(backend, dead):
    network = two_link_network(dead)
    result = solve_num(network, backend=backend)
    assert result.converged
    assert_finite_rates(result.rates, dead)
    assert math.isfinite(result.objective)
    for link, price in result.prices.items():
        assert math.isfinite(price), f"price[{link}] = {price}"
    assert result.rates["a"] > 1e8  # the healthy flow still gets real rate


@pytest.mark.parametrize("backend", ["scalar", "vectorized"])
def test_solve_num_every_link_dead(backend):
    network = FluidNetwork({"l1": 10e9, "l2": 10e9})
    network.add_flow(FluidFlow("f1", ("l1",), LogUtility()))
    network.add_flow(FluidFlow("f2", ("l1", "l2"), LogUtility()))
    network.set_capacity("l1", 0.0)
    network.set_capacity("l2", 0.0)
    result = solve_num(network, backend=backend)
    assert result.converged
    assert result.rates == {"f1": 0.0, "f2": 0.0}
    assert all(price == 0.0 for price in result.prices.values())
    assert math.isfinite(result.objective)


@pytest.mark.parametrize("dead", DEAD_CAPACITIES)
def test_persistent_dual_solver_zero_capacity(dead):
    network = two_link_network(dead)
    solver = PersistentDualSolver()
    result = solver.solve(network)
    assert_finite_rates(result.rates, dead)
    reference = solve_num(network, backend="vectorized")
    assert result.rates["a"] == pytest.approx(reference.rates["a"], rel=1e-3)


def test_persistent_dual_solver_warm_across_fault():
    """Fail a link mid-churn, keep solving, restore it -- state stays warm
    and every solve matches a fresh Oracle."""
    network = FluidNetwork({"shared": 10e9, "dead": 10e9})
    network.add_flow(FluidFlow("a", ("shared",), LogUtility()))
    network.add_flow(FluidFlow("ab", ("shared", "dead"), LogUtility()))
    solver = PersistentDualSolver()

    def check():
        mine = solver.solve(network)
        fresh = solve_num(network, backend="vectorized")
        for flow_id, rate in fresh.rates.items():
            assert mine.rates[flow_id] == pytest.approx(rate, rel=1e-3, abs=1.0)
        assert_finite_rates(mine.rates, network.capacity("dead"))

    check()
    network.set_capacity("dead", 0.0)
    check()
    # Churn while the link is down (the dynamic experiments' pattern).
    network.add_flow(FluidFlow("b", ("dead",), LogUtility()))
    check()
    network.set_capacity("dead", 10e9)
    check()


def test_persistent_dual_solver_invalidates_on_capacity_change():
    """A mid-churn capacity change must invalidate the cached conditioning:
    the solver's allocation tracks the new capacity, not the stale scale."""
    network = FluidNetwork({"link": 10e9})
    for i in range(4):
        network.add_flow(FluidFlow(i, ("link",), LogUtility()))
    solver = PersistentDualSolver()
    first = solver.solve(network)
    assert sum(first.rates.values()) == pytest.approx(10e9, rel=1e-3)
    # Rescale the capacity by 100x -- a stale price scale/curvature would
    # leave the dual far from the new optimum.
    network.set_capacity("link", 100e9)
    second = solver.solve(network)
    assert sum(second.rates.values()) == pytest.approx(100e9, rel=1e-3)
    network.set_capacity("link", 1e9)
    third = solver.solve(network)
    assert sum(third.rates.values()) == pytest.approx(1e9, rel=1e-3)


def test_zero_capacity_property():
    """Property test: random topologies with randomly failed links never
    produce non-finite rates or prices on either backend."""
    hypothesis = pytest.importorskip("hypothesis")
    st = pytest.importorskip("hypothesis.strategies")

    @hypothesis.settings(max_examples=25, deadline=None)
    @hypothesis.given(
        capacities=st.lists(
            st.sampled_from([0.0, 1e-12, 1e-3, 1e9, 10e9]), min_size=2, max_size=4
        ),
        paths=st.data(),
    )
    def run(capacities, paths):
        links = [f"l{i}" for i in range(len(capacities))]
        network = FluidNetwork(
            {link: 10e9 for link in links}
        )
        num_flows = paths.draw(st.integers(min_value=1, max_value=5))
        for j in range(num_flows):
            path = paths.draw(
                st.lists(st.sampled_from(links), min_size=1, max_size=len(links), unique=True)
            )
            network.add_flow(FluidFlow(f"f{j}", tuple(path), LogUtility()))
        for link, capacity in zip(links, capacities):
            network.set_capacity(link, capacity)
        for backend in ("scalar", "vectorized"):
            result = solve_num(network, backend=backend)
            values = list(result.rates.values()) + list(result.prices.values())
            assert np.all(np.isfinite(values))
            assert all(rate >= 0.0 for rate in result.rates.values())

    run()
