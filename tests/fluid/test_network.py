"""Tests for the fluid network description."""

import pytest

from repro.core.utility import LogUtility
from repro.fluid.network import FlowGroup, FluidFlow, FluidNetwork


class TestFluidNetworkConstruction:
    def test_requires_links(self):
        with pytest.raises(ValueError):
            FluidNetwork({})

    def test_requires_positive_capacity(self):
        with pytest.raises(ValueError):
            FluidNetwork({"l": 0.0})

    def test_single_link_constructor(self):
        network = FluidNetwork.single_link(10.0, 3)
        assert len(network.flows) == 3
        assert network.capacity("link") == 10.0


class TestFlowManagement:
    def test_add_and_remove_flow(self):
        network = FluidNetwork({"l": 10.0})
        network.add_flow(FluidFlow("f", ("l",)))
        assert network.flow_ids == ["f"]
        removed = network.remove_flow("f")
        assert removed.flow_id == "f"
        assert network.flow_ids == []

    def test_duplicate_flow_rejected(self):
        network = FluidNetwork({"l": 10.0})
        network.add_flow(FluidFlow("f", ("l",)))
        with pytest.raises(ValueError):
            network.add_flow(FluidFlow("f", ("l",)))

    def test_unknown_link_rejected(self):
        network = FluidNetwork({"l": 10.0})
        with pytest.raises(KeyError):
            network.add_flow(FluidFlow("f", ("nope",)))

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            FluidFlow("f", ())

    def test_flows_on_link(self):
        network = FluidNetwork({"a": 1.0, "b": 1.0})
        network.add_flow(FluidFlow("f1", ("a",)))
        network.add_flow(FluidFlow("f2", ("a", "b")))
        assert {f.flow_id for f in network.flows_on_link("a")} == {"f1", "f2"}
        assert {f.flow_id for f in network.flows_on_link("b")} == {"f2"}

    def test_path_capacity_is_min_along_path(self):
        network = FluidNetwork({"a": 10.0, "b": 3.0})
        network.add_flow(FluidFlow("f", ("a", "b")))
        assert network.path_capacity("f") == 3.0


class TestGroups:
    def test_group_membership_tracks_add_remove(self):
        network = FluidNetwork({"a": 1.0, "b": 1.0})
        network.add_group(FlowGroup("g", LogUtility()))
        network.add_flow(FluidFlow("s1", ("a",), group_id="g"))
        network.add_flow(FluidFlow("s2", ("b",), group_id="g"))
        assert set(network.group("g").member_ids) == {"s1", "s2"}
        network.remove_flow("s1")
        assert set(network.group("g").member_ids) == {"s2"}

    def test_duplicate_group_rejected(self):
        network = FluidNetwork({"a": 1.0})
        network.add_group(FlowGroup("g", LogUtility()))
        with pytest.raises(ValueError):
            network.add_group(FlowGroup("g", LogUtility()))


class TestCapacitiesAndLoads:
    def test_set_capacity(self):
        network = FluidNetwork({"l": 5.0})
        network.set_capacity("l", 17.0)
        assert network.capacity("l") == 17.0

    def test_set_capacity_validates(self):
        network = FluidNetwork({"l": 5.0})
        with pytest.raises(KeyError):
            network.set_capacity("other", 1.0)
        with pytest.raises(ValueError):
            network.set_capacity("l", -1.0)

    def test_link_load_and_feasibility(self):
        network = FluidNetwork({"a": 10.0, "b": 10.0})
        network.add_flow(FluidFlow("f1", ("a", "b")))
        network.add_flow(FluidFlow("f2", ("a",)))
        load = network.link_load({"f1": 4.0, "f2": 5.0})
        assert load == {"a": 9.0, "b": 4.0}
        assert network.is_feasible({"f1": 4.0, "f2": 5.0})
        assert not network.is_feasible({"f1": 9.0, "f2": 5.0})

    def test_total_utility_with_groups(self):
        network = FluidNetwork({"a": 10.0, "b": 10.0})
        network.add_group(FlowGroup("g", LogUtility()))
        network.add_flow(FluidFlow("s1", ("a",), group_id="g"))
        network.add_flow(FluidFlow("s2", ("b",), group_id="g"))
        network.add_flow(FluidFlow("solo", ("a",), LogUtility()))
        total = network.total_utility({"s1": 1.0, "s2": 1.0, "solo": 2.0})
        import math

        assert total == pytest.approx(math.log(2.0) + math.log(2.0))
