"""Tests for weighted max-min water-filling."""

import pytest

from repro.fluid.maxmin import bottleneck_links, max_min, weighted_max_min


class TestWeightedMaxMinSingleLink:
    def test_equal_weights_split_equally(self):
        rates = weighted_max_min(
            weights={"a": 1.0, "b": 1.0}, paths={"a": ["l"], "b": ["l"]}, capacities={"l": 10.0}
        )
        assert rates["a"] == pytest.approx(5.0)
        assert rates["b"] == pytest.approx(5.0)

    def test_rates_proportional_to_weights(self):
        rates = weighted_max_min(
            weights={"a": 1.0, "b": 3.0}, paths={"a": ["l"], "b": ["l"]}, capacities={"l": 8.0}
        )
        assert rates["a"] == pytest.approx(2.0)
        assert rates["b"] == pytest.approx(6.0)

    def test_single_flow_gets_full_link(self):
        rates = weighted_max_min({"a": 0.1}, {"a": ["l"]}, {"l": 42.0})
        assert rates["a"] == pytest.approx(42.0)


class TestWeightedMaxMinMultiLink:
    def test_parking_lot(self):
        """Classic parking-lot: one long flow over two links, two short one-hop flows."""
        paths = {"long": ["l1", "l2"], "short1": ["l1"], "short2": ["l2"]}
        weights = {flow: 1.0 for flow in paths}
        rates = weighted_max_min(weights, paths, {"l1": 10.0, "l2": 10.0})
        assert rates["long"] == pytest.approx(5.0)
        assert rates["short1"] == pytest.approx(5.0)
        assert rates["short2"] == pytest.approx(5.0)

    def test_bottleneck_shifts_with_capacity(self):
        paths = {"long": ["l1", "l2"], "short1": ["l1"], "short2": ["l2"]}
        weights = {flow: 1.0 for flow in paths}
        rates = weighted_max_min(weights, paths, {"l1": 10.0, "l2": 4.0})
        # l2 is the tighter bottleneck: long and short2 get 2 each; short1 takes the rest of l1.
        assert rates["long"] == pytest.approx(2.0)
        assert rates["short2"] == pytest.approx(2.0)
        assert rates["short1"] == pytest.approx(8.0)

    def test_unbottlenecked_flow_gets_leftover(self):
        paths = {"a": ["l1"], "b": ["l1", "l2"]}
        weights = {"a": 1.0, "b": 1.0}
        rates = weighted_max_min(weights, paths, {"l1": 10.0, "l2": 2.0})
        assert rates["b"] == pytest.approx(2.0)
        assert rates["a"] == pytest.approx(8.0)

    def test_no_link_oversubscribed(self):
        paths = {
            "f1": ["a", "b"],
            "f2": ["b", "c"],
            "f3": ["a", "c"],
            "f4": ["a"],
            "f5": ["c"],
        }
        weights = {"f1": 1.0, "f2": 2.0, "f3": 0.5, "f4": 4.0, "f5": 1.0}
        capacities = {"a": 7.0, "b": 3.0, "c": 5.0}
        rates = weighted_max_min(weights, paths, capacities)
        load = {link: 0.0 for link in capacities}
        for flow, rate in rates.items():
            for link in paths[flow]:
                load[link] += rate
        for link in capacities:
            assert load[link] <= capacities[link] * (1 + 1e-9)

    def test_work_conserving(self):
        """Every flow is bottlenecked somewhere: each path has a saturated link."""
        paths = {"f1": ["a", "b"], "f2": ["b"], "f3": ["a"]}
        weights = {"f1": 1.0, "f2": 1.0, "f3": 1.0}
        capacities = {"a": 6.0, "b": 4.0}
        rates = weighted_max_min(weights, paths, capacities)
        saturated = bottleneck_links(rates, paths, capacities)
        for flow, path in paths.items():
            assert any(saturated[link] for link in path), f"{flow} has no bottleneck"


class TestValidation:
    def test_empty_input(self):
        assert weighted_max_min({}, {}, {"l": 1.0}) == {}

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_max_min({"a": 0.0}, {"a": ["l"]}, {"l": 1.0})

    def test_unknown_link_rejected(self):
        with pytest.raises(KeyError):
            weighted_max_min({"a": 1.0}, {"a": ["nope"]}, {"l": 1.0})

    def test_mismatched_flow_sets_rejected(self):
        with pytest.raises(ValueError):
            weighted_max_min({"a": 1.0}, {"b": ["l"]}, {"l": 1.0})


class TestMaxMin:
    def test_plain_max_min_is_equal_weights(self):
        paths = {"a": ["l"], "b": ["l"], "c": ["l"]}
        assert max_min(paths, {"l": 9.0}) == pytest.approx(
            weighted_max_min({f: 1.0 for f in paths}, paths, {"l": 9.0})
        )
