"""Tests for weighted max-min water-filling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fluid.maxmin import bottleneck_links, max_min, weighted_max_min
from repro.fluid.vectorized import CompiledMaxMin, waterfill_arrays


class TestWeightedMaxMinSingleLink:
    def test_equal_weights_split_equally(self):
        rates = weighted_max_min(
            weights={"a": 1.0, "b": 1.0}, paths={"a": ["l"], "b": ["l"]}, capacities={"l": 10.0}
        )
        assert rates["a"] == pytest.approx(5.0)
        assert rates["b"] == pytest.approx(5.0)

    def test_rates_proportional_to_weights(self):
        rates = weighted_max_min(
            weights={"a": 1.0, "b": 3.0}, paths={"a": ["l"], "b": ["l"]}, capacities={"l": 8.0}
        )
        assert rates["a"] == pytest.approx(2.0)
        assert rates["b"] == pytest.approx(6.0)

    def test_single_flow_gets_full_link(self):
        rates = weighted_max_min({"a": 0.1}, {"a": ["l"]}, {"l": 42.0})
        assert rates["a"] == pytest.approx(42.0)


class TestWeightedMaxMinMultiLink:
    def test_parking_lot(self):
        """Classic parking-lot: one long flow over two links, two short one-hop flows."""
        paths = {"long": ["l1", "l2"], "short1": ["l1"], "short2": ["l2"]}
        weights = {flow: 1.0 for flow in paths}
        rates = weighted_max_min(weights, paths, {"l1": 10.0, "l2": 10.0})
        assert rates["long"] == pytest.approx(5.0)
        assert rates["short1"] == pytest.approx(5.0)
        assert rates["short2"] == pytest.approx(5.0)

    def test_bottleneck_shifts_with_capacity(self):
        paths = {"long": ["l1", "l2"], "short1": ["l1"], "short2": ["l2"]}
        weights = {flow: 1.0 for flow in paths}
        rates = weighted_max_min(weights, paths, {"l1": 10.0, "l2": 4.0})
        # l2 is the tighter bottleneck: long and short2 get 2 each; short1 takes the rest of l1.
        assert rates["long"] == pytest.approx(2.0)
        assert rates["short2"] == pytest.approx(2.0)
        assert rates["short1"] == pytest.approx(8.0)

    def test_unbottlenecked_flow_gets_leftover(self):
        paths = {"a": ["l1"], "b": ["l1", "l2"]}
        weights = {"a": 1.0, "b": 1.0}
        rates = weighted_max_min(weights, paths, {"l1": 10.0, "l2": 2.0})
        assert rates["b"] == pytest.approx(2.0)
        assert rates["a"] == pytest.approx(8.0)

    def test_no_link_oversubscribed(self):
        paths = {
            "f1": ["a", "b"],
            "f2": ["b", "c"],
            "f3": ["a", "c"],
            "f4": ["a"],
            "f5": ["c"],
        }
        weights = {"f1": 1.0, "f2": 2.0, "f3": 0.5, "f4": 4.0, "f5": 1.0}
        capacities = {"a": 7.0, "b": 3.0, "c": 5.0}
        rates = weighted_max_min(weights, paths, capacities)
        load = {link: 0.0 for link in capacities}
        for flow, rate in rates.items():
            for link in paths[flow]:
                load[link] += rate
        for link in capacities:
            assert load[link] <= capacities[link] * (1 + 1e-9)

    def test_work_conserving(self):
        """Every flow is bottlenecked somewhere: each path has a saturated link."""
        paths = {"f1": ["a", "b"], "f2": ["b"], "f3": ["a"]}
        weights = {"f1": 1.0, "f2": 1.0, "f3": 1.0}
        capacities = {"a": 6.0, "b": 4.0}
        rates = weighted_max_min(weights, paths, capacities)
        saturated = bottleneck_links(rates, paths, capacities)
        for flow, path in paths.items():
            assert any(saturated[link] for link in path), f"{flow} has no bottleneck"


class TestValidation:
    def test_empty_input(self):
        assert weighted_max_min({}, {}, {"l": 1.0}) == {}

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_max_min({"a": 0.0}, {"a": ["l"]}, {"l": 1.0})

    def test_unknown_link_rejected(self):
        with pytest.raises(KeyError):
            weighted_max_min({"a": 1.0}, {"a": ["nope"]}, {"l": 1.0})

    def test_mismatched_flow_sets_rejected(self):
        with pytest.raises(ValueError):
            weighted_max_min({"a": 1.0}, {"b": ["l"]}, {"l": 1.0})


class TestMaxMin:
    def test_plain_max_min_is_equal_weights(self):
        paths = {"a": ["l"], "b": ["l"], "c": ["l"]}
        assert max_min(paths, {"l": 9.0}) == pytest.approx(
            weighted_max_min({f: 1.0 for f in paths}, paths, {"l": 9.0})
        )


def _assert_batched_matches_scalar(weights, paths, capacities):
    """Batched waterfill == scalar progressive filling at 1e-9 relative."""
    scalar = weighted_max_min(weights, paths, capacities)
    compiled = CompiledMaxMin(paths, capacities)
    stats = {}
    rates = dict(
        zip(
            compiled.flow_ids,
            compiled.solve_array(
                np.array([weights[f] for f in compiled.flow_ids]), stats=stats
            ).tolist(),
        )
    )
    for flow_id, reference in scalar.items():
        assert rates[flow_id] == pytest.approx(reference, rel=1e-9, abs=1e-9)
    return stats


class TestBatchedWaterfill:
    """Batched multi-bottleneck freezing vs the scalar progressive reference."""

    def test_tie_heavy_symmetric_fabric_freezes_in_few_rounds(self):
        # 16 identical edge links, one flow each, all bottlenecked at the
        # same level: one freezing round despite 16 bottleneck links.
        capacities = {f"edge{i}": 10.0 for i in range(16)}
        paths = {i: [f"edge{i}"] for i in range(16)}
        weights = {i: 1.0 for i in range(16)}
        stats = _assert_batched_matches_scalar(weights, paths, capacities)
        assert stats["rounds"] == 1
        assert stats["levels"] == 1

    def test_round_count_tracks_levels_not_links(self):
        # Two tiers of edge capacities feeding one shared core: the batched
        # round count is bounded by the distinct bottleneck levels, far
        # below the link count that the unbatched schedule pays.
        capacities = {f"small{i}": 1.0 for i in range(8)}
        capacities.update({f"big{i}": 4.0 for i in range(8)})
        capacities["core"] = 100.0
        paths = {}
        weights = {}
        for i in range(8):
            paths[f"s{i}"] = [f"small{i}", "core"]
            paths[f"b{i}"] = [f"big{i}", "core"]
            weights[f"s{i}"] = weights[f"b{i}"] = 1.0
        stats = _assert_batched_matches_scalar(weights, paths, capacities)
        assert stats["rounds"] <= stats["levels"] < len(capacities)

    def test_unbatched_reference_path_matches_scalar(self):
        capacities = {"a": 3.0, "b": 5.0, "core": 6.0}
        paths = {1: ["a", "core"], 2: ["b", "core"], 3: ["core"]}
        weights = {1: 1.0, 2: 2.0, 3: 1.0}
        scalar = weighted_max_min(weights, paths, capacities)
        compiled = CompiledMaxMin(paths, capacities)
        weight_vec = np.array([weights[f] for f in compiled.flow_ids])
        stats = {}
        single = waterfill_arrays(
            compiled.incidence,
            compiled.incidence_f,
            weight_vec,
            compiled.capacities_vector(),
            batch_ties=False,
            stats=stats,
        )
        for j, flow_id in enumerate(compiled.flow_ids):
            assert single[j] == pytest.approx(scalar[flow_id], rel=1e-9)
        assert stats["rounds"] >= stats["levels"]

    def test_wave_regime_matches_scalar_on_host_link_fabric(self):
        # Above _WATERFILL_WAVE_MIN_LINKS links the batched path switches to
        # the local-minimum wave detector; pin it to the scalar reference on
        # a host-link-rich fabric (the Fig. 5 shape) and check the rounds
        # collapse below the level count.
        import random as random_module

        from repro.fluid.vectorized import _WATERFILL_WAVE_MIN_LINKS

        rng = random_module.Random(9)
        n_hosts = 96
        capacities = {("edge", h): rng.choice([1.0, 2.0, 4.0]) for h in range(n_hosts)}
        capacities.update({("core", c): 40.0 for c in range(4)})
        paths = {}
        weights = {}
        for f in range(120):
            src, dst = rng.sample(range(n_hosts), 2)
            paths[f] = [("edge", src), ("core", rng.randrange(4)), ("edge", dst)]
            weights[f] = rng.uniform(0.5, 4.0)
        assert len(capacities) >= _WATERFILL_WAVE_MIN_LINKS
        stats = _assert_batched_matches_scalar(weights, paths, capacities)
        assert stats["rounds"] <= stats["levels"]
        assert stats["rounds"] < len(capacities)

    @settings(max_examples=120, deadline=None)
    @given(data=st.data())
    def test_tie_heavy_random_topologies(self, data):
        # Small integer capacities and weights force abundant exact ties;
        # the batched allocation must still match scalar progressive
        # filling at 1e-9.
        n_links = data.draw(st.integers(min_value=1, max_value=5), label="links")
        links = [f"l{i}" for i in range(n_links)]
        capacities = {
            link: float(data.draw(st.sampled_from([1, 2, 4]), label="cap"))
            for link in links
        }
        n_flows = data.draw(st.integers(min_value=1, max_value=10), label="flows")
        paths = {}
        weights = {}
        for f in range(n_flows):
            length = data.draw(
                st.integers(min_value=1, max_value=n_links), label="len"
            )
            start = data.draw(
                st.integers(min_value=0, max_value=n_links - 1), label="start"
            )
            paths[f] = [links[(start + i) % n_links] for i in range(length)]
            weights[f] = float(data.draw(st.sampled_from([1, 1, 2]), label="w"))
        stats = _assert_batched_matches_scalar(weights, paths, capacities)
        assert stats["rounds"] <= n_links
