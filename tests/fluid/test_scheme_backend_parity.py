"""Parity suite for the vectorized DGD / RCP* / DCTCP backends + CompiledMaxMin.

Mirrors ``tests/fluid/test_vectorized_parity.py`` (the xWI suite): every
test drives the scalar and the vectorized backend of a scheme through the
same scenario and asserts that rates AND the per-link state (prices, fair
rates, queues) agree within 1e-9 -- far looser than the observed agreement
(~1e-15 relative), but tight enough that any semantic divergence fails
immediately.  Each scheme gets the Table 2 parameter grid, a churn trace,
and a hypothesis-driven random-topology comparison.
"""

import copy
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.utility import AlphaFairUtility, FctUtility, LogUtility, WeightedAlphaFairUtility
from repro.fluid.dctcp import DctcpFluidParameters, DctcpFluidSimulator
from repro.fluid.dgd import DgdFluidParameters, DgdFluidSimulator
from repro.fluid.maxmin import weighted_max_min
from repro.fluid.network import FluidFlow, FluidNetwork
from repro.fluid.rcp import RcpStarFluidParameters, RcpStarFluidSimulator
from repro.fluid.vectorized import CompiledMaxMin, compile_max_min

TOLERANCE = 1e-9

SCHEMES = {
    "dgd": (DgdFluidSimulator, DgdFluidParameters),
    "rcp_star": (RcpStarFluidSimulator, RcpStarFluidParameters),
    "dctcp": (DctcpFluidSimulator, DctcpFluidParameters),
}

#: Per-scheme gain/parameter variants around the Table 2 operating points.
PARAMETER_GRID = {
    "dgd": [
        DgdFluidParameters(),
        DgdFluidParameters(utilization_gain=0.5, queue_gain=0.05),
        DgdFluidParameters(queue_gain=0.4, max_outstanding_bdp=1.0),
        DgdFluidParameters(update_interval=32e-6, rtt=32e-6),
    ],
    "rcp_star": [
        RcpStarFluidParameters(),
        RcpStarFluidParameters(gain_a=0.8, gain_b=0.1),
        RcpStarFluidParameters(alpha=2.0),
        RcpStarFluidParameters(alpha=0.5, max_outstanding_bdp=1.0),
    ],
    "dctcp": [
        DctcpFluidParameters(),
        DctcpFluidParameters(marking_threshold_fraction=0.3),
        DctcpFluidParameters(gain=1.0 / 4.0),
        DctcpFluidParameters(initial_window_fraction=0.5, mtu_bits=9000 * 8),
    ],
}


def assert_close(scalar_values, vectorized_values, scale=1.0, what="rates"):
    assert set(scalar_values) == set(vectorized_values), what
    for key, value in scalar_values.items():
        assert vectorized_values[key] == pytest.approx(
            value, rel=TOLERANCE, abs=TOLERANCE * scale
        ), (what, key)


def link_state(simulator):
    """The scheme's per-link state dicts (name -> dict), for deep parity."""
    state = {"queues": simulator.queues}
    if hasattr(simulator, "prices"):
        state["prices"] = simulator.prices
    if hasattr(simulator, "fair_rates"):
        state["fair_rates"] = simulator.fair_rates
    return state


def assert_step_parity(scalar_sim, vectorized_sim, iterations):
    for _ in range(iterations):
        scalar_record = scalar_sim.step()
        vectorized_record = vectorized_sim.step()
        assert_close(scalar_record.rates, vectorized_record.rates, scale=1e9)
        scalar_state = link_state(scalar_sim)
        vectorized_state = link_state(vectorized_sim)
        for name, values in scalar_state.items():
            assert_close(values, vectorized_state[name], scale=1e9, what=name)


def make_pair(capacities):
    return FluidNetwork(dict(capacities)), FluidNetwork(dict(capacities))


def add_to_both(networks, flow_id, path, utility):
    for network in networks:
        network.add_flow(FluidFlow(flow_id, path, copy.deepcopy(utility)))


def build_pair():
    """A small multi-bottleneck pair with all vectorizable utility families."""
    networks = make_pair({"a": 10e9, "b": 4e9, "c": 25e9})
    add_to_both(networks, 0, ("a", "b"), LogUtility(weight=2.0))
    add_to_both(networks, 1, ("b", "c"), AlphaFairUtility(alpha=2.0))
    add_to_both(networks, 2, ("a", "c"), WeightedAlphaFairUtility(weight=3.0, alpha=0.5))
    add_to_both(networks, 3, ("c",), FctUtility(flow_size=1e6))
    return networks


class TestSchemeBackendParity:
    @pytest.mark.parametrize(
        "scheme,params",
        [(scheme, params) for scheme in PARAMETER_GRID for params in PARAMETER_GRID[scheme]],
    )
    def test_parameter_grid(self, scheme, params):
        """Parity must hold across the gain grid, not just the defaults."""
        simulator_cls, _ = SCHEMES[scheme]
        networks = build_pair()
        scalar = simulator_cls(networks[0], params=params)
        vectorized = simulator_cls(networks[1], params=params, backend="vectorized")
        assert_step_parity(scalar, vectorized, 150)

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_churn_trace(self, scheme):
        """Arrivals and departures recompile the backend without divergence."""
        simulator_cls, _ = SCHEMES[scheme]
        networks = make_pair({"a": 10e9, "b": 4e9})
        add_to_both(networks, 0, ("a",), LogUtility())
        add_to_both(networks, 1, ("a", "b"), LogUtility(weight=2.0))
        scalar = simulator_cls(networks[0])
        vectorized = simulator_cls(networks[1], backend="vectorized")
        trace = [
            ("run", 30),
            ("add", 2, ("b",), AlphaFairUtility(alpha=2.0)),
            ("run", 30),
            ("add", 3, ("a", "b"), FctUtility(flow_size=5e5)),
            ("run", 30),
            ("remove", 1),
            ("run", 30),
            ("remove", 0),
            ("add", 4, ("a",), LogUtility(weight=0.5)),
            ("run", 40),
        ]
        for event in trace:
            if event[0] == "run":
                assert_step_parity(scalar, vectorized, event[1])
            elif event[0] == "add":
                _, flow_id, path, utility = event
                add_to_both(networks, flow_id, path, utility)
            else:
                for network in networks:
                    network.remove_flow(event[1])

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_capacity_change_needs_no_recompile(self, scheme):
        simulator_cls, _ = SCHEMES[scheme]
        networks = make_pair({"l": 10e9})
        add_to_both(networks, 0, ("l",), LogUtility())
        add_to_both(networks, 1, ("l",), LogUtility())
        scalar = simulator_cls(networks[0])
        vectorized = simulator_cls(networks[1], backend="vectorized")
        assert_step_parity(scalar, vectorized, 40)
        compiled_before = vectorized._compiled
        for network in networks:
            network.set_capacity("l", 2e9)
        assert_step_parity(scalar, vectorized, 60)
        assert vectorized._compiled is compiled_before

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_unknown_backend_rejected(self, scheme):
        simulator_cls, _ = SCHEMES[scheme]
        with pytest.raises(ValueError):
            simulator_cls(FluidNetwork({"l": 1e9}), backend="gpu")

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_empty_network(self, scheme):
        """A flowless step must work on both backends (prices still move)."""
        simulator_cls, _ = SCHEMES[scheme]
        networks = make_pair({"l": 1e9})
        scalar = simulator_cls(networks[0])
        vectorized = simulator_cls(networks[1], backend="vectorized")
        assert_step_parity(scalar, vectorized, 5)

    def test_dctcp_departure_cleans_vectorized_state(self):
        network = FluidNetwork.single_link(10e9, 2)
        simulator = DctcpFluidSimulator(network, backend="vectorized")
        simulator.run(10)
        network.remove_flow(0)
        simulator.run(10)
        assert 0 not in simulator.windows
        assert 0 not in simulator.ecn_fraction
        assert len(simulator._windows_vec) == 1

    def test_dctcp_external_window_write_honored(self):
        """Assigning `windows` between steps takes effect on both backends."""
        networks = make_pair({"l": 10e9})
        for i in range(2):
            add_to_both(networks, i, ("l",), LogUtility())
        scalar = DctcpFluidSimulator(networks[0])
        vectorized = DctcpFluidSimulator(networks[1], backend="vectorized")
        assert_step_parity(scalar, vectorized, 10)
        override = {0: 5e4, 1: 7e4}
        scalar.windows = dict(override)
        vectorized.windows = dict(override)
        scalar_record = scalar.step()
        vectorized_record = vectorized.step()
        rtt = scalar.params.rtt
        assert scalar_record.rates[0] == pytest.approx(5e4 / rtt)
        assert vectorized_record.rates[0] == pytest.approx(5e4 / rtt)
        assert_step_parity(scalar, vectorized, 20)
        # In-place item mutation of the dict view must be honored too.
        scalar.windows[1] *= 3.0
        vectorized.windows[1] *= 3.0
        assert scalar.step().rates[1] == pytest.approx(vectorized.step().rates[1], rel=TOLERANCE)
        assert_step_parity(scalar, vectorized, 20)

    def test_dctcp_ewma_survives_churn(self):
        """The lazily synced ECN state must carry across a recompile."""
        networks = make_pair({"l": 10e9})
        for i in range(4):
            add_to_both(networks, i, ("l",), LogUtility())
        scalar = DctcpFluidSimulator(networks[0])
        vectorized = DctcpFluidSimulator(networks[1], backend="vectorized")
        assert_step_parity(scalar, vectorized, 120)  # long enough to mark
        add_to_both(networks, 99, ("l",), LogUtility())
        assert_step_parity(scalar, vectorized, 120)
        assert_close(scalar.ecn_fraction, vectorized.ecn_fraction, scale=1.0, what="ecn")


@st.composite
def random_scenarios(draw):
    """A random multi-link topology plus a mixed-utility flow population."""
    n_links = draw(st.integers(min_value=1, max_value=5))
    capacities = {
        f"l{i}": draw(st.sampled_from([1e9, 10e9, 40e9])) for i in range(n_links)
    }
    n_flows = draw(st.integers(min_value=1, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    rng = random.Random(seed)
    flows = []
    for flow_id in range(n_flows):
        path = tuple(rng.sample(list(capacities), rng.randint(1, n_links)))
        utility = rng.choice(
            [
                LogUtility(weight=rng.uniform(0.2, 5.0)),
                AlphaFairUtility(alpha=rng.choice([0.5, 1.0, 2.0, 3.0])),
                WeightedAlphaFairUtility(weight=rng.uniform(0.5, 2.0), alpha=rng.uniform(0.3, 2.0)),
                FctUtility(flow_size=rng.uniform(1e4, 1e7)),
            ]
        )
        flows.append((flow_id, path, utility))
    return capacities, flows


class TestRandomTopologyParity:
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    @given(scenario=random_scenarios())
    @settings(max_examples=25, deadline=None)
    def test_random_topologies(self, scheme, scenario):
        """Property: scalar and vectorized agree on any random topology."""
        capacities, flows = scenario
        simulator_cls, _ = SCHEMES[scheme]
        networks = make_pair(capacities)
        for flow_id, path, utility in flows:
            add_to_both(networks, flow_id, path, utility)
        scalar = simulator_cls(networks[0])
        vectorized = simulator_cls(networks[1], backend="vectorized")
        assert_step_parity(scalar, vectorized, 40)


class TestCompiledMaxMin:
    def _instance(self, n_flows=30, seed=11):
        rng = random.Random(seed)
        capacities = {f"l{i}": rng.choice([1e9, 10e9, 40e9]) for i in range(5)}
        paths = {
            f: tuple(rng.sample(list(capacities), rng.randint(1, 3)))
            for f in range(n_flows)
        }
        weights = {f: rng.uniform(0.1, 5.0) for f in paths}
        return weights, paths, capacities

    def test_matches_scalar_across_weight_vectors(self):
        """The whole point: one compile, many solves, scalar-equal answers."""
        weights, paths, capacities = self._instance()
        compiled = compile_max_min(paths, capacities)
        rng = random.Random(3)
        for _ in range(10):
            weights = {f: rng.uniform(0.1, 5.0) for f in paths}
            assert_close(
                weighted_max_min(weights, paths, capacities),
                compiled.solve(weights),
                scale=1e9,
            )

    def test_from_network(self):
        network = FluidNetwork({"a": 10e9, "b": 4e9})
        network.add_flow(FluidFlow(0, ("a", "b"), LogUtility()))
        network.add_flow(FluidFlow(1, ("b",), LogUtility()))
        compiled = CompiledMaxMin.from_network(network)
        weights = {0: 1.0, 1: 3.0}
        paths = {0: ("a", "b"), 1: ("b",)}
        assert_close(
            weighted_max_min(weights, paths, network.capacities),
            compiled.solve(weights),
            scale=1e9,
        )

    def test_capacity_override_per_solve(self):
        weights, paths, capacities = self._instance()
        compiled = compile_max_min(paths, capacities)
        halved = {link: capacity / 2 for link, capacity in capacities.items()}
        assert_close(
            weighted_max_min(weights, paths, halved),
            compiled.solve(weights, capacities=halved),
            scale=1e9,
        )
        # ...and the compile-time capacities are untouched afterwards.
        assert_close(
            weighted_max_min(weights, paths, capacities),
            compiled.solve(weights),
            scale=1e9,
        )

    def test_validates_like_scalar(self):
        with pytest.raises(ValueError, match="empty"):
            compile_max_min({0: ()}, {"l": 1e9})
        with pytest.raises(ValueError, match="twice"):
            compile_max_min({0: ("l", "l")}, {"l": 1e9})
        with pytest.raises(KeyError):
            compile_max_min({0: ("ghost",)}, {"l": 1e9})
        compiled = compile_max_min({0: ("l",)}, {"l": 1e9})
        with pytest.raises(ValueError, match="positive weight"):
            compiled.solve({0: -1.0})
        with pytest.raises(ValueError, match="cover the same flow ids"):
            compiled.solve({1: 1.0})
        with pytest.raises(ValueError, match="cover the same flow ids"):
            compiled.solve({0: 1.0, 1: 1.0})
