"""Topology builder tests: fat-tree path correctness, leaf-spine edge cases."""

import pytest

from repro.core.config import SimulationParameters
from repro.fluid.topologies import fat_tree, leaf_spine


class TestFatTreeStructure:
    def test_host_and_link_counts(self):
        fabric = fat_tree(k=4)
        assert fabric.num_servers == 16
        assert fabric.hosts_per_pod == 4
        assert fabric.num_core_paths == 4
        links = fabric.network.links
        # Per direction: 16 host links, k pods x (k/2)^2 edge<->agg links,
        # k pods x (k/2)^2 agg<->core links -- 48 each way.
        assert len(links) == 2 * (16 + 4 * 4 + 4 * 4)

    def test_k_must_be_even(self):
        with pytest.raises(ValueError):
            fat_tree(k=3)
        with pytest.raises(ValueError):
            fat_tree(k=0)

    def test_addressing(self):
        fabric = fat_tree(k=4)
        assert fabric.pod_of(0) == 0
        assert fabric.pod_of(15) == 3
        assert fabric.edge_of(0) == (0, 0)
        assert fabric.edge_of(3) == (0, 1)
        assert fabric.edge_of(5) == (1, 0)
        with pytest.raises(ValueError):
            fabric.pod_of(16)


class TestFatTreePaths:
    @pytest.fixture
    def fabric(self):
        return fat_tree(k=4)

    def test_same_edge_two_hops(self, fabric):
        path = fabric.path(0, 1)
        assert path == (("host-up", 0), ("host-down", 1))

    def test_same_pod_four_hops(self, fabric):
        # Hosts 0 and 2 share pod 0 but hang off different edge switches.
        path = fabric.path(0, 2, agg=1)
        assert len(path) == 4
        assert path[0] == ("host-up", 0)
        assert path[1] == ("edge-up", 0, 0, 1)
        assert path[2] == ("edge-down", 0, 1, 1)
        assert path[3] == ("host-down", 2)

    def test_cross_pod_six_hops(self, fabric):
        path = fabric.path(0, 15, agg=0, core=1)
        assert len(path) == 6
        assert path[1] == ("edge-up", 0, 0, 0)
        assert path[2] == ("agg-up", 0, 0, 1)
        assert path[3] == ("agg-down", 0, 1, 3)
        assert path[4] == ("edge-down", 3, 0, 1)

    def test_every_path_link_exists_in_network(self, fabric):
        capacities = set(fabric.network.links)
        for src in range(fabric.num_servers):
            for dst in range(fabric.num_servers):
                if src == dst:
                    continue
                for path in fabric.all_paths(src, dst):
                    for link in path:
                        assert link in capacities, f"{link} missing for {src}->{dst}"

    def test_all_paths_counts(self, fabric):
        assert len(fabric.all_paths(0, 1)) == 1  # same edge
        assert len(fabric.all_paths(0, 2)) == 2  # same pod: k/2 agg choices
        assert len(fabric.all_paths(0, 15)) == 4  # cross pod: (k/2)^2
        # All enumerated paths are distinct.
        paths = fabric.all_paths(0, 15)
        assert len(set(paths)) == len(paths)

    def test_default_choice_is_deterministic(self, fabric):
        assert fabric.path(0, 15) == fabric.path(0, 15)

    def test_path_rejects_bad_inputs(self, fabric):
        with pytest.raises(ValueError):
            fabric.path(0, 0)
        with pytest.raises(ValueError):
            fabric.path(0, 99)
        with pytest.raises(ValueError):
            fabric.path(0, 15, agg=2)
        with pytest.raises(ValueError):
            fabric.path(0, 15, agg=0, core=7)

    def test_larger_radix(self):
        fabric = fat_tree(k=6)
        assert fabric.num_servers == 54
        assert len(fabric.all_paths(0, 53)) == 9
        path = fabric.path(0, 53)
        assert len(path) == 6


class TestLeafSpinePaths:
    @pytest.fixture
    def fabric(self):
        params = SimulationParameters(num_servers=16, num_leaves=4, num_spines=2)
        return leaf_spine(params)

    def test_all_spine_paths_cross_leaf(self, fabric):
        paths = fabric.all_spine_paths(0, 8)
        assert len(paths) == 2
        for spine, path in enumerate(paths):
            assert path == (
                ("host-up", 0),
                ("up", 0, spine),
                ("down", spine, 2),
                ("host-down", 8),
            )

    def test_all_spine_paths_same_leaf_single_path(self, fabric):
        # src and dst under the same leaf: exactly one two-hop path, no
        # spine involvement (the edge case the ECMP enumeration must skip).
        paths = fabric.all_spine_paths(0, 1)
        assert paths == [(("host-up", 0), ("host-down", 1))]

    def test_all_spine_paths_same_server_rejected(self, fabric):
        with pytest.raises(ValueError):
            fabric.all_spine_paths(3, 3)

    def test_path_spine_out_of_range(self, fabric):
        with pytest.raises(ValueError):
            fabric.path(0, 8, spine=5)
