"""Tests for the fluid xWI simulator: convergence to the NUM optimum."""

import pytest

from repro.core.config import NumFabricParameters
from repro.core.utility import AlphaFairUtility, FctUtility, LogUtility, WeightedAlphaFairUtility
from repro.fluid.convergence import ConvergenceCriterion, convergence_iterations
from repro.fluid.network import FlowGroup, FluidFlow, FluidNetwork
from repro.fluid.oracle import solve_num
from repro.fluid.xwi import XwiFluidSimulator


def assert_rates_close(rates, optimal, rel=0.05):
    for flow_id, optimal_rate in optimal.items():
        assert rates[flow_id] == pytest.approx(optimal_rate, rel=rel), flow_id


class TestSingleLinkConvergence:
    def test_proportional_fairness(self):
        network = FluidNetwork.single_link(10e9, 5)
        simulator = XwiFluidSimulator(network)
        records = simulator.run(40)
        optimal = solve_num(network).rates
        assert_rates_close(records[-1].rates, optimal)

    def test_weighted_proportional_fairness(self):
        network = FluidNetwork({"l": 10e9})
        for i, weight in enumerate([1.0, 2.0, 5.0]):
            network.add_flow(FluidFlow(i, ("l",), LogUtility(weight=weight)))
        simulator = XwiFluidSimulator(network)
        records = simulator.run(60)
        optimal = solve_num(network).rates
        assert_rates_close(records[-1].rates, optimal)

    @pytest.mark.parametrize("alpha", [0.5, 1.0, 2.0])
    def test_alpha_fairness(self, alpha):
        network = FluidNetwork({"l": 10e9})
        for i in range(4):
            network.add_flow(FluidFlow(i, ("l",), AlphaFairUtility(alpha=alpha)))
        simulator = XwiFluidSimulator(network)
        records = simulator.run(80)
        optimal = solve_num(network).rates
        assert_rates_close(records[-1].rates, optimal)


class TestMultiLinkConvergence:
    def test_parking_lot(self):
        network = FluidNetwork({"l1": 9e9, "l2": 9e9})
        network.add_flow(FluidFlow("long", ("l1", "l2"), LogUtility()))
        network.add_flow(FluidFlow("s1", ("l1",), LogUtility()))
        network.add_flow(FluidFlow("s2", ("l2",), LogUtility()))
        simulator = XwiFluidSimulator(network)
        records = simulator.run(80)
        optimal = solve_num(network).rates
        assert_rates_close(records[-1].rates, optimal)

    def test_heterogeneous_weights_and_capacities(self):
        network = FluidNetwork({"a": 10e9, "b": 4e9, "c": 25e9})
        network.add_flow(FluidFlow(1, ("a", "b"), LogUtility(weight=2.0)))
        network.add_flow(FluidFlow(2, ("b", "c"), LogUtility(weight=1.0)))
        network.add_flow(FluidFlow(3, ("a", "c"), LogUtility(weight=0.5)))
        network.add_flow(FluidFlow(4, ("c",), LogUtility(weight=3.0)))
        simulator = XwiFluidSimulator(network)
        records = simulator.run(150)
        optimal = solve_num(network).rates
        assert_rates_close(records[-1].rates, optimal, rel=0.08)

    def test_weighted_alpha_two_network(self):
        network = FluidNetwork({"a": 10e9, "b": 4e9})
        network.add_flow(FluidFlow(1, ("a", "b"), WeightedAlphaFairUtility(weight=1.0, alpha=2.0)))
        network.add_flow(FluidFlow(2, ("a",), WeightedAlphaFairUtility(weight=2.0, alpha=2.0)))
        network.add_flow(FluidFlow(3, ("b",), WeightedAlphaFairUtility(weight=3.0, alpha=2.0)))
        simulator = XwiFluidSimulator(network)
        records = simulator.run(150)
        optimal = solve_num(network).rates
        assert_rates_close(records[-1].rates, optimal, rel=0.08)

    def test_rates_always_feasible(self):
        """xWI never oversubscribes a link at any iteration (the Swift property)."""
        network = FluidNetwork({"a": 10e9, "b": 4e9})
        network.add_flow(FluidFlow(1, ("a", "b"), LogUtility()))
        network.add_flow(FluidFlow(2, ("a",), AlphaFairUtility(alpha=2.0)))
        network.add_flow(FluidFlow(3, ("b",), LogUtility(weight=4.0)))
        simulator = XwiFluidSimulator(network)
        for record in simulator.run(50):
            assert network.is_feasible(record.rates, tolerance=1e-6)


class TestDynamicFlowChanges:
    def test_flow_arrival_reconverges(self):
        network = FluidNetwork.single_link(10e9, 2)
        simulator = XwiFluidSimulator(network)
        simulator.run(40)
        network.add_flow(FluidFlow("new", ("link",), LogUtility()))
        records = simulator.run(40)
        optimal = solve_num(network).rates
        assert_rates_close(records[-1].rates, optimal)

    def test_flow_departure_reconverges(self):
        network = FluidNetwork.single_link(10e9, 3)
        simulator = XwiFluidSimulator(network)
        simulator.run(40)
        network.remove_flow(0)
        records = simulator.run(40)
        optimal = solve_num(network).rates
        assert_rates_close(records[-1].rates, optimal)

    def test_capacity_change_reconverges(self):
        network = FluidNetwork.single_link(10e9, 2)
        simulator = XwiFluidSimulator(network)
        simulator.run(40)
        network.set_capacity("link", 30e9)
        records = simulator.run(60)
        optimal = solve_num(network).rates
        assert_rates_close(records[-1].rates, optimal)


class TestResourcePooling:
    def test_two_subflows_fill_both_paths(self):
        network = FluidNetwork({"p1": 4e9, "p2": 6e9})
        network.add_group(FlowGroup("g", LogUtility()))
        network.add_flow(FluidFlow("s1", ("p1",), LogUtility(), group_id="g"))
        network.add_flow(FluidFlow("s2", ("p2",), LogUtility(), group_id="g"))
        simulator = XwiFluidSimulator(network)
        records = simulator.run(100)
        aggregate = sum(records[-1].rates.values())
        assert aggregate == pytest.approx(10e9, rel=0.05)

    def test_pooled_groups_share_fairly(self):
        """Two groups, each with a private path and a shared path."""
        network = FluidNetwork({"shared": 10e9, "private1": 5e9, "private2": 5e9})
        for g in ("g1", "g2"):
            network.add_group(FlowGroup(g, LogUtility()))
        network.add_flow(FluidFlow("g1_priv", ("private1",), LogUtility(), group_id="g1"))
        network.add_flow(FluidFlow("g1_shared", ("shared",), LogUtility(), group_id="g1"))
        network.add_flow(FluidFlow("g2_priv", ("private2",), LogUtility(), group_id="g2"))
        network.add_flow(FluidFlow("g2_shared", ("shared",), LogUtility(), group_id="g2"))
        simulator = XwiFluidSimulator(network)
        records = simulator.run(150)
        rates = records[-1].rates
        g1 = rates["g1_priv"] + rates["g1_shared"]
        g2 = rates["g2_priv"] + rates["g2_shared"]
        assert g1 == pytest.approx(g2, rel=0.1)
        assert g1 + g2 == pytest.approx(20e9, rel=0.05)


class TestConvergenceSpeed:
    def test_converges_within_tens_of_iterations(self):
        """The headline claim: xWI needs only a handful of price updates."""
        network = FluidNetwork({"a": 10e9, "b": 40e9})
        for i in range(10):
            path = ("a",) if i % 2 == 0 else ("a", "b")
            network.add_flow(FluidFlow(i, path, LogUtility()))
        simulator = XwiFluidSimulator(network)
        simulator.run(100)
        optimal = solve_num(network).rates
        iterations = convergence_iterations(
            simulator.rate_history(), optimal, ConvergenceCriterion(hold_iterations=3)
        )
        assert iterations is not None
        assert iterations <= 40

    def test_fct_utility_converges_with_slowdown(self):
        """Small-alpha utilities need the 2x-slowed control loop (Sec. 6.2)."""
        params = NumFabricParameters().slowed_down(2.0)
        network = FluidNetwork({"l": 10e9})
        network.add_flow(FluidFlow("short", ("l",), FctUtility(flow_size=100e3)))
        network.add_flow(FluidFlow("long", ("l",), FctUtility(flow_size=10e6)))
        simulator = XwiFluidSimulator(network, params=params)
        records = simulator.run(200)
        assert records[-1].rates["short"] > records[-1].rates["long"]
        total = sum(records[-1].rates.values())
        assert total == pytest.approx(10e9, rel=0.05)
