"""The docs are part of the contract: doctests must run, links must resolve.

Mirrors the CI ``docs`` job so a broken example or a dead link fails
locally before it fails on a reader.
"""

import doctest
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Modules whose docstrings carry runnable examples (the public-API
#: docstring pass).  Add a module here and its examples become a gate.
DOCTEST_MODULES = [
    "repro.scenarios.spec",
    "repro.scenarios.runner",
    "repro.sweep",
]

DOCTEST_FLAGS = doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE

#: Markdown files whose relative links must resolve.
DOC_FILES = [
    REPO_ROOT / "README.md",
    *sorted((REPO_ROOT / "docs").glob("*.md")),
]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_doctests(module_name):
    module = __import__(module_name, fromlist=["__name__"])
    results = doctest.testmod(module, optionflags=DOCTEST_FLAGS, verbose=False)
    assert results.attempted > 0, f"{module_name} lost its doctest examples"
    assert results.failed == 0


@pytest.mark.parametrize("doc_path", DOC_FILES, ids=lambda p: p.name)
def test_no_dead_relative_links(doc_path):
    assert doc_path.exists(), f"{doc_path} is linked from the docs job but missing"
    dead = []
    for target in _LINK.findall(doc_path.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # external; not checked offline
        relative = target.split("#", 1)[0]
        if not relative:
            continue  # pure in-page anchor
        if not (doc_path.parent / relative).exists():
            dead.append(target)
    assert not dead, f"dead link(s) in {doc_path.name}: {dead}"


def test_docs_directory_is_linked_from_readme():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/METRICS.md" in readme
