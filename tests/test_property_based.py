"""Property-based tests (hypothesis) for the core data structures and invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.bandwidth_function import PiecewiseLinearBandwidthFunction, single_link_allocation
from repro.core.utility import (
    AlphaFairUtility,
    FctUtility,
    LogUtility,
    WeightedAlphaFairUtility,
)
from repro.fluid.maxmin import weighted_max_min
from repro.fluid.network import FluidFlow, FluidNetwork
from repro.fluid.xwi import XwiFluidSimulator

rates = st.floats(min_value=1e3, max_value=1e11, allow_nan=False, allow_infinity=False)
alphas = st.floats(min_value=0.1, max_value=4.0)
# Round-trip tests need the marginal utility to stay above the numerical
# floor (~1e-30); alpha = 2.5 at 100 Gbit/s gives ~1e-28, comfortably inside.
roundtrip_alphas = st.floats(min_value=0.1, max_value=2.5)
weights = st.floats(min_value=0.01, max_value=100.0)


class TestUtilityProperties:
    @given(alpha=roundtrip_alphas, rate=rates)
    @settings(max_examples=200)
    def test_alpha_fair_inverse_marginal_roundtrip(self, alpha, rate):
        utility = AlphaFairUtility(alpha=alpha)
        recovered = utility.inverse_marginal(utility.marginal(rate))
        assert math.isclose(recovered, rate, rel_tol=1e-6)

    @given(
        weight=st.floats(min_value=0.1, max_value=10.0),
        alpha=st.floats(min_value=0.1, max_value=2.0),
        rate=rates,
    )
    @settings(max_examples=200)
    def test_weighted_alpha_fair_roundtrip(self, weight, alpha, rate):
        utility = WeightedAlphaFairUtility(weight=weight, alpha=alpha)
        recovered = utility.inverse_marginal(utility.marginal(rate))
        assert math.isclose(recovered, rate, rel_tol=1e-6)

    @given(size=st.floats(min_value=100, max_value=1e9), r1=rates, r2=rates)
    @settings(max_examples=200)
    def test_fct_utility_concave(self, size, r1, r2):
        """Marginal utility is non-increasing in the rate."""
        utility = FctUtility(flow_size=size)
        low, high = min(r1, r2), max(r1, r2)
        assert utility.marginal(low) >= utility.marginal(high) - 1e-18

    @given(alpha=alphas, r1=rates, r2=rates)
    @settings(max_examples=200)
    def test_alpha_fair_value_increasing(self, alpha, r1, r2):
        utility = AlphaFairUtility(alpha=alpha)
        low, high = min(r1, r2), max(r1, r2)
        if high > low * (1 + 1e-9):
            assert utility.value(high) >= utility.value(low)


@st.composite
def maxmin_instances(draw):
    """Random weighted max-min instances: a handful of links and flows."""
    n_links = draw(st.integers(min_value=1, max_value=5))
    n_flows = draw(st.integers(min_value=1, max_value=8))
    capacities = {
        f"l{i}": draw(st.floats(min_value=1e6, max_value=1e10)) for i in range(n_links)
    }
    flow_weights = {}
    paths = {}
    for f in range(n_flows):
        flow_weights[f] = draw(st.floats(min_value=0.01, max_value=10.0))
        path_len = draw(st.integers(min_value=1, max_value=n_links))
        links = draw(
            st.lists(
                st.sampled_from(sorted(capacities)), min_size=path_len, max_size=path_len,
                unique=True,
            )
        )
        paths[f] = links
    return flow_weights, paths, capacities


class TestWeightedMaxMinProperties:
    @given(instance=maxmin_instances())
    @settings(max_examples=200)
    def test_feasibility(self, instance):
        """No link is ever oversubscribed."""
        flow_weights, paths, capacities = instance
        rates = weighted_max_min(flow_weights, paths, capacities)
        load = {link: 0.0 for link in capacities}
        for flow, rate in rates.items():
            assert rate >= 0.0
            for link in paths[flow]:
                load[link] += rate
        for link, capacity in capacities.items():
            assert load[link] <= capacity * (1 + 1e-9)

    @given(instance=maxmin_instances())
    @settings(max_examples=200)
    def test_work_conservation(self, instance):
        """Every flow has at least one saturated link on its path (no waste)."""
        flow_weights, paths, capacities = instance
        rates = weighted_max_min(flow_weights, paths, capacities)
        load = {link: 0.0 for link in capacities}
        for flow, rate in rates.items():
            for link in paths[flow]:
                load[link] += rate
        for flow in rates:
            saturated = any(
                load[link] >= capacities[link] * (1 - 1e-6) for link in paths[flow]
            )
            assert saturated

    @given(instance=maxmin_instances(), scale=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=100)
    def test_scale_invariance(self, instance, scale):
        """Scaling all capacities scales all rates by the same factor."""
        flow_weights, paths, capacities = instance
        base = weighted_max_min(flow_weights, paths, capacities)
        scaled = weighted_max_min(
            flow_weights, paths, {l: c * scale for l, c in capacities.items()}
        )
        for flow in base:
            assert math.isclose(scaled[flow], base[flow] * scale, rel_tol=1e-6)

    @given(instance=maxmin_instances())
    @settings(max_examples=200)
    def test_vectorized_backend_matches_scalar(self, instance):
        """The NumPy water-filling gives the scalar allocation on any topology."""
        flow_weights, paths, capacities = instance
        scalar = weighted_max_min(flow_weights, paths, capacities)
        vectorized = weighted_max_min(flow_weights, paths, capacities, backend="vectorized")
        assert set(scalar) == set(vectorized)
        for flow, rate in scalar.items():
            assert math.isclose(vectorized[flow], rate, rel_tol=1e-9, abs_tol=1e-9)


@st.composite
def xwi_networks(draw):
    """Random fluid networks with a mix of utility families."""
    n_links = draw(st.integers(min_value=1, max_value=4))
    capacities = {
        f"l{i}": draw(st.floats(min_value=1e8, max_value=4e10)) for i in range(n_links)
    }
    network = FluidNetwork(capacities)
    n_flows = draw(st.integers(min_value=1, max_value=6))
    for f in range(n_flows):
        path_len = draw(st.integers(min_value=1, max_value=n_links))
        path = tuple(
            draw(
                st.lists(
                    st.sampled_from(sorted(capacities)), min_size=path_len,
                    max_size=path_len, unique=True,
                )
            )
        )
        utility = draw(
            st.one_of(
                st.builds(LogUtility, weight=st.floats(min_value=0.1, max_value=10.0)),
                st.builds(AlphaFairUtility, alpha=st.floats(min_value=0.3, max_value=2.5)),
                st.builds(
                    WeightedAlphaFairUtility,
                    weight=st.floats(min_value=0.1, max_value=10.0),
                    alpha=st.floats(min_value=0.3, max_value=2.5),
                ),
                st.builds(FctUtility, flow_size=st.floats(min_value=1e3, max_value=1e8)),
            )
        )
        network.add_flow(FluidFlow(f, path, utility))
    return network


class TestXwiBackendParityProperties:
    @given(network=xwi_networks(), iterations=st.integers(min_value=1, max_value=30))
    @settings(max_examples=50, deadline=None)
    def test_vectorized_xwi_matches_scalar(self, network, iterations):
        """Scalar and vectorized xWI agree to 1e-9 on random topologies."""
        import copy

        mirror = FluidNetwork(dict(network.capacities))
        for flow in network.flows:
            mirror.add_flow(FluidFlow(flow.flow_id, flow.path, copy.deepcopy(flow.utility)))
        scalar = XwiFluidSimulator(network)
        vectorized = XwiFluidSimulator(mirror, backend="vectorized")
        for _ in range(iterations):
            scalar_record = scalar.step()
            vectorized_record = vectorized.step()
        for flow_id, rate in scalar_record.rates.items():
            assert math.isclose(
                vectorized_record.rates[flow_id], rate, rel_tol=1e-9, abs_tol=1e-3
            ), flow_id
        for link, price in scalar_record.prices.items():
            assert math.isclose(
                vectorized_record.prices[link], price, rel_tol=1e-9, abs_tol=1e-18
            ), link


@st.composite
def bandwidth_functions(draw):
    """Random non-decreasing piecewise-linear bandwidth functions."""
    n_segments = draw(st.integers(min_value=1, max_value=4))
    fair_shares = [0.0]
    bandwidths = [0.0]
    for _ in range(n_segments):
        fair_shares.append(fair_shares[-1] + draw(st.floats(min_value=0.1, max_value=5.0)))
        bandwidths.append(bandwidths[-1] + draw(st.floats(min_value=0.0, max_value=10e9)))
    return PiecewiseLinearBandwidthFunction(list(zip(fair_shares, bandwidths)))


class TestBandwidthFunctionProperties:
    @given(bwf=bandwidth_functions(), f1=st.floats(min_value=0, max_value=20),
           f2=st.floats(min_value=0, max_value=20))
    @settings(max_examples=200)
    def test_non_decreasing(self, bwf, f1, f2):
        low, high = min(f1, f2), max(f1, f2)
        assert bwf(high) >= bwf(low) - 1e-6

    @given(bwfs=st.lists(bandwidth_functions(), min_size=1, max_size=4),
           capacity=st.floats(min_value=1e6, max_value=50e9))
    @settings(max_examples=200)
    def test_water_filling_never_oversubscribes(self, bwfs, capacity):
        _, allocation = single_link_allocation(bwfs, capacity)
        assert sum(allocation) <= capacity * (1 + 1e-6) or all(
            a == bwf.max_bandwidth for a, bwf in zip(allocation, bwfs)
        )

    @given(bwfs=st.lists(bandwidth_functions(), min_size=2, max_size=4),
           c1=st.floats(min_value=1e6, max_value=50e9),
           c2=st.floats(min_value=1e6, max_value=50e9))
    @settings(max_examples=100)
    def test_allocations_monotone_in_capacity(self, bwfs, c1, c2):
        low, high = min(c1, c2), max(c1, c2)
        _, alloc_low = single_link_allocation(bwfs, low)
        _, alloc_high = single_link_allocation(bwfs, high)
        for a_low, a_high in zip(alloc_low, alloc_high):
            assert a_high >= a_low - 1e-3
