"""Smoke and shape tests for the experiment harnesses (tiny configurations)."""

import pytest

from repro.experiments import (
    format_table,
    run_bandwidth_function_sweep,
    run_bwfunction_pooling_timeseries,
    run_convergence_cdf,
    run_deviation_experiment,
    run_rate_timeseries,
    run_resource_pooling,
    run_table1_allocations,
    run_table2_parameters,
)
from repro.experiments.fig4_convergence import ConvergenceSettings
from repro.experiments.fig5_dynamic import DeviationSettings
from repro.experiments.fig7_fct import FlowLevelFctSettings, run_fct_flow_level
from repro.experiments.fig8_resource_pooling import ResourcePoolingSettings
from repro.experiments.registry import ExperimentResult


class TestRegistry:
    def test_result_columns_and_str(self):
        result = ExperimentResult("x", "title")
        result.add_row(a=1, b=2.5)
        result.add_row(a=3)
        assert result.column("a") == [1, 3]
        assert result.column("b") == [2.5, None]
        rendered = str(result)
        assert "title" in rendered and "2.5" in rendered

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_ragged_rows(self):
        # Rows with mixed/missing columns: the header must show the union,
        # missing cells render as '-', and nothing raises.
        rows = [
            {"a": 1},
            {"b": 2.5},
            {"a": 3, "c": "x"},
        ]
        rendered = format_table(rows)
        header = rendered.splitlines()[0]
        for col in ("a", "b", "c"):
            assert col in header
        body = rendered.splitlines()[2:]
        assert len(body) == 3
        assert "-" in body[0]  # row 1 has no 'b'/'c'

    def test_format_table_all_empty_rows(self):
        # A column absent from every row (only empty dicts) must not crash
        # the width computation with max() on an empty sequence.
        assert format_table([{}, {}]) == "(no columns)"

    def test_format_table_column_only_in_header_position(self):
        # One wide column name, values narrower than the header everywhere.
        rows = [{"a_very_long_column_name": 1}, {}]
        rendered = format_table(rows)
        assert rendered.splitlines()[0].strip() == "a_very_long_column_name"
        assert rendered.splitlines()[2].startswith("1")
        assert rendered.splitlines()[3].strip() == "-"


class TestFig4:
    def test_convergence_cdf_tiny(self):
        settings = ConvergenceSettings(
            num_servers=16, num_leaves=4, num_spines=2, num_paths=60,
            flows_per_event=10, min_active=20, max_active=40, num_events=2,
            max_iterations=150,
        )
        result = run_convergence_cdf(settings)
        schemes = set(result.column("scheme"))
        assert schemes == {"NUMFabric", "DGD", "RCP*"}
        by = {row["scheme"]: row for row in result.rows}
        assert by["NUMFabric"]["median_us"] <= by["DGD"]["median_us"]

    def test_rate_timeseries_shapes(self):
        result = run_rate_timeseries(num_flows=6, iterations=40, change_at=20)
        assert len(result.rows) == 40
        assert result.rows[-1]["numfabric_rate_gbps"] == pytest.approx(
            result.rows[-1]["expected_rate_gbps"], rel=0.1
        )


class TestFig5:
    def test_websearch_small(self):
        settings = DeviationSettings(num_servers=8, num_leaves=2, num_spines=2, num_flows=25)
        result = run_deviation_experiment("websearch", settings, schemes=["NUMFabric"])
        assert all(row["scheme"] == "NUMFabric" for row in result.rows)
        assert len(result.rows) == 5  # one row per BDP bin

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            run_deviation_experiment("nonsense")


class TestFig7FlowLevel:
    def test_fct_utility_beats_proportional_fairness(self):
        settings = FlowLevelFctSettings(
            num_servers=8, num_leaves=2, num_spines=2, num_flows=60
        )
        result = run_fct_flow_level(loads=[0.4, 0.6], settings=settings)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["fct_utility_flows_completed"] == 60
            assert row["proportional_flows_completed"] == 60
            # The SRPT-like utility cannot do worse on average than fair sharing.
            assert row["ratio"] <= 1.0 + 1e-9

    def test_flow_backends_agree(self):
        settings_array = FlowLevelFctSettings(num_servers=8, num_leaves=2, num_flows=40)
        settings_dict = FlowLevelFctSettings(
            num_servers=8, num_leaves=2, num_flows=40, flow_backend="dict"
        )
        by_array = run_fct_flow_level(loads=[0.5], settings=settings_array)
        by_dict = run_fct_flow_level(loads=[0.5], settings=settings_dict)
        for key in ("fct_utility_mean_norm_fct", "proportional_p99_norm_fct"):
            assert by_array.rows[0][key] == pytest.approx(by_dict.rows[0][key], rel=1e-12)


class TestFig8:
    def test_resource_pooling_small(self):
        settings = ResourcePoolingSettings(num_servers=16, num_leaves=4, num_spines=2,
                                           iterations=50)
        result = run_resource_pooling(subflow_counts=[1, 4], settings=settings)
        pooled = {row["subflows"]: row for row in result.rows if row["resource_pooling"]}
        assert pooled[4]["total_throughput_pct"] >= pooled[1]["total_throughput_pct"] - 1e-6


class TestFig9And10:
    def test_bandwidth_function_sweep_matches_expectation(self):
        result = run_bandwidth_function_sweep(capacities_gbps=[10, 25], iterations=120)
        by_capacity = {row["capacity_gbps"]: row for row in result.rows}
        assert by_capacity[25]["numfabric_flow1_gbps"] == pytest.approx(15.0, rel=0.05)
        assert by_capacity[25]["numfabric_flow2_gbps"] == pytest.approx(10.0, rel=0.05)

    def test_pooling_timeseries_final_allocation(self):
        result = run_bwfunction_pooling_timeseries(iterations_per_phase=80, record_every=20)
        final = result.rows[-1]
        assert final["flow1_gbps"] == pytest.approx(15.0, rel=0.1)
        assert final["flow2_gbps"] == pytest.approx(10.0, rel=0.1)


class TestTables:
    def test_table1_has_all_objectives(self):
        result = run_table1_allocations()
        assert len(result.rows) == 5

    def test_table2_contains_numfabric_defaults(self):
        result = run_table2_parameters()
        values = {(r["scheme"], r["parameter"]): r["value"] for r in result.rows}
        assert values[("NUMFabric", "eta")] == 5.0
        assert values[("NUMFabric", "beta")] == 0.5
