"""Dict/array backend parity for the flow-level simulation (Fig. 5/7 engine).

The array backend must reproduce the dict reference exactly -- same
completion order, same quantized finish times, same average rates -- across
the edge cases the batched update has to preserve: zero-byte flows,
simultaneous arrivals and completions inside one step, and ``max_time``
truncation mid-flow.
"""

import pytest

from repro.experiments.dynamic_fluid import (
    EqualSharePolicy,
    FlowLevelSimulation,
    OracleRatePolicy,
    scheme_rate_policy,
)
from repro.fluid.network import FluidNetwork
from repro.workloads.distributions import UniformFlowSizeDistribution
from repro.workloads.poisson import FlowArrival, PoissonTrafficGenerator

STEP = 30e-6


def single_link_network():
    return FluidNetwork({"bottleneck": 1e9})


def run_single_link(arrivals, backend, policy=None, max_time=None, network=None):
    network = network or single_link_network()
    simulation = FlowLevelSimulation(
        network,
        lambda arrival: ("bottleneck",),
        policy or EqualSharePolicy(1e9),
        step_interval=STEP,
        backend=backend,
    )
    return simulation, simulation.run(arrivals, max_time=max_time)


def assert_identical(dict_completed, array_completed):
    assert [c.flow_id for c in dict_completed] == [c.flow_id for c in array_completed]
    for d, a in zip(dict_completed, array_completed):
        assert d.size_bytes == a.size_bytes
        assert d.start_time == a.start_time
        assert d.finish_time == a.finish_time  # exact: identical arithmetic
        assert d.fct == a.fct
        assert d.average_rate == a.average_rate


def arrival(flow_id, time, size_bytes):
    return FlowArrival(
        flow_id=flow_id, time=time, source=0, destination=1, size_bytes=size_bytes
    )


class TestBackendParity:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            FlowLevelSimulation(
                single_link_network(), lambda a: ("bottleneck",), EqualSharePolicy(1e9),
                backend="gpu",
            )

    def test_poisson_workload_identical(self):
        generator = PoissonTrafficGenerator(
            num_servers=4,
            size_distribution=UniformFlowSizeDistribution(1_000, 200_000),
            load=0.5,
            link_rate=1e9,
            seed=3,
        )
        arrivals = generator.generate(max_flows=80)
        _, by_dict = run_single_link(arrivals, "dict")
        _, by_array = run_single_link(arrivals, "array")
        assert len(by_dict) == 80
        assert_identical(by_dict, by_array)

    def test_zero_byte_flow_completes_on_first_step(self):
        arrivals = [arrival(0, 0.0, 0), arrival(1, 0.0, 50_000)]
        _, by_dict = run_single_link(arrivals, "dict")
        _, by_array = run_single_link(arrivals, "array")
        assert_identical(by_dict, by_array)
        zero = next(c for c in by_array if c.flow_id == 0)
        # It still takes one step interval to be noticed, never less.
        assert zero.finish_time == pytest.approx(STEP)
        assert zero.average_rate == 0.0

    def test_simultaneous_arrivals_and_completions_within_one_step(self):
        # Three flows arrive at the same instant (admitted as one batch); the
        # two small ones are sized to finish together in a single step.
        small = int(1e9 * STEP / 8 / 3 * 0.4)  # 40% of one step's three-way share
        arrivals = [
            arrival(0, 0.0, small),
            arrival(1, 0.0, small),
            arrival(2, 0.0, 10_000_000),
        ]
        _, by_dict = run_single_link(arrivals, "dict")
        _, by_array = run_single_link(arrivals, "array")
        assert_identical(by_dict, by_array)
        # The two small flows complete in the same (first) step.
        first_two = [c for c in by_array if c.flow_id in (0, 1)]
        assert first_two[0].finish_time == first_two[1].finish_time == pytest.approx(STEP)

    def test_max_time_truncates_mid_flow(self):
        arrivals = [arrival(0, 0.0, 1_000), arrival(1, 0.0, 50_000_000)]
        horizon = 40 * STEP
        sim_dict, by_dict = run_single_link(arrivals, "dict", max_time=horizon)
        sim_array, by_array = run_single_link(arrivals, "array", max_time=horizon)
        assert_identical(by_dict, by_array)
        assert [c.flow_id for c in by_array] == [0]
        # The truncated flow stays admitted in both backends.
        assert sim_dict.network.flow_ids == [1]
        assert sim_array.network.flow_ids == [1]
        assert sim_dict.active_flow_count == sim_array.active_flow_count == 1

    def test_idle_gap_jumps_to_next_arrival(self):
        arrivals = [arrival(0, 0.0, 1_000), arrival(1, 0.5, 1_000)]
        _, by_dict = run_single_link(arrivals, "dict")
        _, by_array = run_single_link(arrivals, "array")
        assert_identical(by_dict, by_array)
        assert by_array[1].start_time == 0.5
        assert by_array[1].finish_time > 0.5

    def test_flows_outlive_many_compaction_batches(self):
        # Staggered sizes force a completion batch on almost every step, so
        # the array backend compacts repeatedly while survivors keep state.
        arrivals = [arrival(i, 0.0, 1_000 * (i + 1)) for i in range(50)]
        _, by_dict = run_single_link(arrivals, "dict")
        _, by_array = run_single_link(arrivals, "array")
        assert len(by_array) == 50
        assert_identical(by_dict, by_array)

    def test_scheme_policy_parity(self):
        generator = PoissonTrafficGenerator(
            num_servers=4,
            size_distribution=UniformFlowSizeDistribution(10_000, 500_000),
            load=0.4,
            link_rate=1e9,
            seed=9,
        )
        arrivals = generator.generate(max_flows=30)
        _, by_dict = run_single_link(
            arrivals, "dict", policy=scheme_rate_policy("NUMFabric")
        )
        _, by_array = run_single_link(
            arrivals, "array", policy=scheme_rate_policy("NUMFabric")
        )
        assert_identical(by_dict, by_array)

    def test_oracle_policy_parity(self):
        generator = PoissonTrafficGenerator(
            num_servers=4,
            size_distribution=UniformFlowSizeDistribution(10_000, 500_000),
            load=0.4,
            link_rate=1e9,
            seed=11,
        )
        arrivals = generator.generate(max_flows=25)
        _, by_dict = run_single_link(arrivals, "dict", policy=OracleRatePolicy())
        _, by_array = run_single_link(arrivals, "array", policy=OracleRatePolicy())
        assert_identical(by_dict, by_array)


class TestArrayInternals:
    def test_slot_compaction_preserves_admission_order(self):
        policy = EqualSharePolicy(1e9)
        simulation = FlowLevelSimulation(
            single_link_network(), lambda a: ("bottleneck",), policy,
            step_interval=STEP, backend="array",
        )
        sizes = [5_000, 500_000, 5_000, 500_000, 5_000]
        simulation.run([arrival(i, 0.0, s) for i, s in enumerate(sizes)])
        # Small flows (even ids) complete first, in admission order; then the
        # large ones, also in admission order.
        assert [c.flow_id for c in simulation.completed] == [0, 2, 4, 1, 3]
        assert simulation.active_flow_count == 0

    def test_mutating_policy_without_epoch_is_never_served_stale_rates(self):
        # A policy written the "natural" way: it mutates one dict in place
        # and returns the same object every step.  Since it does not
        # implement rates_epoch(), the array backend must re-gather every
        # step instead of trusting dict identity.
        class InPlacePolicy:
            def __init__(self):
                self._rates = {}
                self.calls = 0

            def on_flow_set_changed(self, network):
                pass

            def rates(self, network, dt):
                self.calls += 1
                self._rates.clear()
                # Rate grows step over step, so a stale cached vector would
                # visibly delay completions.
                for flow in network.flows:
                    self._rates[flow.flow_id] = 1e6 * self.calls
                return self._rates

            def rates_epoch(self):
                return None

        arrivals = [arrival(0, 0.0, 40_000), arrival(1, 0.0, 40_000)]
        _, by_dict = run_single_link(arrivals, "dict", policy=InPlacePolicy())
        _, by_array = run_single_link(arrivals, "array", policy=InPlacePolicy())
        assert_identical(by_dict, by_array)

    def test_epoch_caching_reuses_vector_between_flow_set_changes(self):
        class StubPolicy:
            epoch = 1

            def on_flow_set_changed(self, network):
                pass

            def rates(self, network, dt):
                return {}

            def rates_epoch(self):
                return self.epoch

        policy = StubPolicy()
        simulation = FlowLevelSimulation(
            single_link_network(), lambda a: ("bottleneck",), policy,
            step_interval=STEP, backend="array",
        )
        simulation._append_flow(arrival(0, 0.0, 1_000))
        first = simulation._gather_rates({0: 5.0})
        # Same epoch: the gathered vector is reused (that is the contract --
        # a policy advertising an epoch promises the allocation is stable).
        assert simulation._gather_rates({0: 7.0}) is first
        policy.epoch = 2
        refreshed = simulation._gather_rates({0: 7.0})
        assert refreshed is not first
        assert refreshed[0] == 7.0
        # A slot-layout change invalidates the cache even at the same epoch.
        simulation._append_flow(arrival(1, 0.0, 1_000))
        regathered = simulation._gather_rates({0: 7.0, 1: 9.0})
        assert regathered.shape == (2,) and regathered[1] == 9.0

    def test_rate_cache_invalidated_on_flow_set_change(self):
        # A policy that mutates its allocation only on flow-set changes, like
        # the Oracle: the cached rate vector must be refreshed when the slot
        # layout changes even though the dict object stays logically similar.
        arrivals = [arrival(0, 0.0, 40_000), arrival(1, 10 * STEP, 40_000)]
        _, by_dict = run_single_link(arrivals, "dict")
        _, by_array = run_single_link(arrivals, "array")
        assert_identical(by_dict, by_array)
