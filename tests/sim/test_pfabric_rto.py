"""pFabric retransmission under real packet drops.

The fault scenarios drive pFabric queues into overflow; recovery then
depends entirely on ``_maybe_retransmit`` (the RTO path).  These tests
exercise it two ways: a deterministic unit-level poke of the timer
callback, and an end-to-end incast that overflows a small queue so actual
drops force actual retransmissions -- and every flow still completes.
"""

import pytest

from repro.sim.flow import FlowDescriptor
from repro.sim.topology import dumbbell, single_link_network
from repro.transports.pfabric import PfabricParameters, PfabricScheme


def build_incast(num_flows=6, queue_packets=4, size_bytes=60_000):
    """Many synchronized senders into a tiny pFabric queue: guaranteed drops.

    Access links run 4x the bottleneck, each sender's initial window is
    ~5 MTU, and the shared queue holds only ``queue_packets`` packets, so
    the first RTT already overflows it.
    """
    params = PfabricParameters(queue_capacity_packets=queue_packets)
    network = single_link_network(
        PfabricScheme(params), num_flows=num_flows, link_rate=1e9
    )
    flows = [
        FlowDescriptor(
            flow_id=i,
            source=("sender", i),
            destination=("receiver", i),
            size_bytes=size_bytes,
            start_time=0.0,
        )
        for i in range(num_flows)
    ]
    for flow in flows:
        network.add_flow(flow)
    return network, flows


class TestRtoUnderDrops:
    def test_incast_drops_retransmits_and_completes(self):
        network, flows = build_incast()
        network.run(until=0.5)

        completions = {c.flow_id for c in network.fct_tracker.completions}
        assert completions == {flow.flow_id for flow in flows}

        dropped = sum(port.queue.packets_dropped for port in network.ports)
        assert dropped > 0, "incast was supposed to overflow the queue"

        retransmissions = sum(sender.retransmissions for sender in network.senders.values())
        assert retransmissions > 0, "drops must be repaired via the RTO path"

        # Every byte of every flow was actually delivered despite the drops.
        for flow in flows:
            receiver = network.receivers[flow.flow_id]
            assert receiver.bytes_received >= flow.size_bytes

    def test_completion_times_are_finite_and_ordered(self):
        network, flows = build_incast()
        network.run(until=0.5)
        for completion in network.fct_tracker.completions:
            assert completion.finish_time > completion.start_time >= 0.0

    def test_no_retransmissions_without_drops(self):
        """Sanity inverse: one unchallenged flow never hits the RTO path.

        Access = bottleneck = 10 Gbps, so there is no queue build-up and the
        window drains well inside the 45 us RTO; any retransmission here
        would be a regression in the timer logic.  (``single_link_network``
        runs access at 4x, which overflows the queue even for one flow --
        that is what the incast tests above rely on.)
        """
        params = PfabricParameters()
        network = dumbbell(PfabricScheme(params), num_pairs=1,
                           bottleneck_rate=10e9, access_rate=10e9)
        network.add_flow(FlowDescriptor(flow_id=0, source=("sender", 0),
                                destination=("receiver", 0), size_bytes=60_000))
        network.run(until=0.5)
        assert len(network.fct_tracker.completions) == 1
        assert sum(port.queue.packets_dropped for port in network.ports) == 0
        assert network.senders[0].retransmissions == 0


class TestMaybeRetransmitUnit:
    def make_sender(self):
        network = single_link_network(PfabricScheme(), num_flows=1, link_rate=1e9)
        network.add_flow(FlowDescriptor(flow_id=0, source=("sender", 0),
                                destination=("receiver", 0), size_bytes=600_000))
        # Prime the simulator just enough for the first window to go out.
        network.simulator.run(until=1e-6)
        return network, network.senders[0]

    def test_unacked_sequence_is_resent(self):
        network, sender = self.make_sender()
        assert sender._outstanding, "the initial window must be in flight"
        sequence, (size_bytes, _handle) = next(iter(sender._outstanding.items()))
        before = sender.retransmissions
        sender._maybe_retransmit(sequence, size_bytes)
        assert sender.retransmissions == before + 1
        # The retransmitted sequence is tracked again with a fresh timer.
        assert sequence in sender._outstanding

    def test_acked_sequence_is_not_resent(self):
        network, sender = self.make_sender()
        sequence, (size_bytes, _handle) = next(iter(sender._outstanding.items()))
        sender._outstanding.pop(sequence)
        sender._acked_sequences.add(sequence)
        before = sender.retransmissions
        sender._maybe_retransmit(sequence, size_bytes)
        assert sender.retransmissions == before
        assert sequence not in sender._outstanding

    def test_stopped_sender_never_retransmits(self):
        network, sender = self.make_sender()
        sequence, (size_bytes, _handle) = next(iter(sender._outstanding.items()))
        sender.stopped = True
        before = sender.retransmissions
        sender._maybe_retransmit(sequence, size_bytes)
        assert sender.retransmissions == before


def test_retransmission_total_is_deterministic():
    """The incast is fully deterministic: same drops, same RTO repairs."""
    totals = []
    for _ in range(2):
        network, _flows = build_incast()
        network.run(until=0.5)
        totals.append(
            (
                sum(port.queue.packets_dropped for port in network.ports),
                sum(sender.retransmissions for sender in network.senders.values()),
                tuple(sorted((c.flow_id, c.finish_time) for c in network.fct_tracker.completions)),
            )
        )
    assert totals[0] == totals[1]
