"""Tests for the discrete-event engine and queueing disciplines."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue, EcnQueue, PfabricQueue, StfqQueue


def make_packet(flow_id=0, size=1500, **kwargs):
    return Packet(flow_id=flow_id, source="a", destination="b", size_bytes=size, **kwargs)


class TestSimulator:
    def test_events_run_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(3e-6, order.append, "c")
        simulator.schedule(1e-6, order.append, "a")
        simulator.schedule(2e-6, order.append, "b")
        simulator.run()
        assert order == ["a", "b", "c"]
        assert simulator.now == pytest.approx(3e-6)

    def test_ties_break_by_insertion_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(1e-6, order.append, 1)
        simulator.schedule(1e-6, order.append, 2)
        simulator.run()
        assert order == [1, 2]

    def test_run_until(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(1e-6, fired.append, 1)
        simulator.schedule(5e-6, fired.append, 2)
        simulator.run(until=2e-6)
        assert fired == [1]
        assert simulator.now == pytest.approx(2e-6)
        simulator.run()
        assert fired == [1, 2]

    def test_cancelled_event_does_not_fire(self):
        simulator = Simulator()
        fired = []
        handle = simulator.schedule(1e-6, fired.append, 1)
        handle.cancel()
        simulator.run()
        assert fired == []

    def test_cannot_schedule_in_the_past(self):
        simulator = Simulator()
        with pytest.raises(ValueError):
            simulator.schedule(-1.0, lambda: None)

    def test_periodic_timer_fires_until_stopped(self):
        simulator = Simulator()
        ticks = []
        timer = simulator.every(1e-6, lambda: ticks.append(simulator.now))
        simulator.run(until=5.5e-6)
        timer.stop()
        simulator.run(until=10e-6)
        assert len(ticks) == 5


class TestDropTailQueue:
    def test_fifo_order(self):
        queue = DropTailQueue(capacity_bytes=10_000)
        first, second = make_packet(sequence=1), make_packet(sequence=2)
        queue.enqueue(first, 0.0)
        queue.enqueue(second, 0.0)
        assert queue.dequeue(0.0) is first
        assert queue.dequeue(0.0) is second
        assert queue.dequeue(0.0) is None

    def test_drops_when_full(self):
        queue = DropTailQueue(capacity_bytes=3000)
        assert queue.enqueue(make_packet(), 0.0)
        assert queue.enqueue(make_packet(), 0.0)
        assert not queue.enqueue(make_packet(), 0.0)
        assert queue.packets_dropped == 1
        assert queue.bytes_queued == 3000


class TestEcnQueue:
    def test_marks_above_threshold(self):
        queue = EcnQueue(capacity_bytes=1_000_000, marking_threshold_packets=2, mtu_bytes=1500)
        packets = [make_packet(ecn_capable=True) for _ in range(4)]
        for packet in packets:
            queue.enqueue(packet, 0.0)
        assert not packets[0].ecn_marked
        assert not packets[1].ecn_marked
        assert packets[2].ecn_marked
        assert packets[3].ecn_marked

    def test_non_ecn_packets_never_marked(self):
        queue = EcnQueue(marking_threshold_packets=1)
        packets = [make_packet(ecn_capable=False) for _ in range(3)]
        for packet in packets:
            queue.enqueue(packet, 0.0)
        assert not any(p.ecn_marked for p in packets)


class TestStfqQueue:
    def test_weighted_service_order(self):
        """A heavier flow (smaller virtual length) gets served more often."""
        queue = StfqQueue()
        # Flow A weight 1 (virtual length 1500), flow B weight 3 (500).
        for i in range(3):
            queue.enqueue(make_packet(flow_id="A", sequence=i, virtual_length=1500.0), 0.0)
            queue.enqueue(make_packet(flow_id="B", sequence=i, virtual_length=500.0), 0.0)
        served = [queue.dequeue(0.0).flow_id for _ in range(6)]
        # Among the first four served packets, flow B gets at least two and
        # is never starved behind all of A's backlog.
        assert served.count("B") == 3
        assert served[:4].count("B") >= 2

    def test_control_packets_not_blocked(self):
        queue = StfqQueue()
        queue.enqueue(make_packet(flow_id="bulk", virtual_length=1e9), 0.0)
        queue.enqueue(make_packet(flow_id="ctrl", size=40, virtual_length=0.0), 0.0)
        # The control packet's zero virtual length puts it no later than the
        # backlogged bulk packet that arrived first.
        first = queue.dequeue(0.0)
        assert first.flow_id == "bulk" or first.flow_id == "ctrl"
        assert len(queue) == 1

    def test_drop_when_full(self):
        queue = StfqQueue(capacity_bytes=3000)
        assert queue.enqueue(make_packet(), 0.0)
        assert queue.enqueue(make_packet(), 0.0)
        assert not queue.enqueue(make_packet(), 0.0)

    def test_forget_flow(self):
        queue = StfqQueue()
        queue.enqueue(make_packet(flow_id="x", virtual_length=100.0), 0.0)
        queue.dequeue(0.0)
        queue.forget_flow("x")
        assert queue._last_finish == {}


class TestPfabricQueue:
    def test_serves_smallest_priority_first(self):
        queue = PfabricQueue(capacity_packets=10)
        queue.enqueue(make_packet(flow_id="big", priority=1_000_000), 0.0)
        queue.enqueue(make_packet(flow_id="small", priority=1_000), 0.0)
        assert queue.dequeue(0.0).flow_id == "small"

    def test_drops_largest_priority_on_overflow(self):
        queue = PfabricQueue(capacity_packets=2)
        queue.enqueue(make_packet(flow_id="a", priority=100), 0.0)
        queue.enqueue(make_packet(flow_id="b", priority=10_000), 0.0)
        assert queue.enqueue(make_packet(flow_id="c", priority=50), 0.0)
        remaining = {queue.dequeue(0.0).flow_id, queue.dequeue(0.0).flow_id}
        assert remaining == {"a", "c"}
        assert queue.packets_dropped == 1

    def test_arriving_least_urgent_packet_is_dropped(self):
        queue = PfabricQueue(capacity_packets=1)
        queue.enqueue(make_packet(flow_id="a", priority=10), 0.0)
        assert not queue.enqueue(make_packet(flow_id="b", priority=1000), 0.0)


class TestLazyCancellationPurge:
    def test_pending_events_is_live_count(self):
        simulator = Simulator()
        handles = [simulator.schedule(1e-6 * (i + 1), lambda: None) for i in range(10)]
        assert simulator.pending_events == 10
        for handle in handles[:4]:
            handle.cancel()
        assert simulator.pending_events == 6
        handles[0].cancel()  # double-cancel must not double-count
        assert simulator.pending_events == 6

    def test_compaction_purges_cancelled_entries(self):
        simulator = Simulator()
        fired = []
        keep = [simulator.schedule(1e-6 * (i + 1), fired.append, i) for i in range(40)]
        doomed = [simulator.schedule(1.0 + 1e-6 * i, fired.append, 1000 + i) for i in range(160)]
        for handle in doomed:
            handle.cancel()
        # Compaction keeps the cancelled fraction bounded: the heap may hold
        # at most ~half dead entries, never all 160.
        assert len(simulator._queue) <= 2 * len(keep) + 1
        assert simulator.pending_events == len(keep)
        simulator.run()
        assert fired == list(range(40))

    def test_cancel_after_fire_keeps_count_consistent(self):
        simulator = Simulator()
        handle = simulator.schedule(1e-6, lambda: None)
        simulator.schedule(2e-6, lambda: None)
        simulator.run(until=1.5e-6)
        handle.cancel()  # already fired; must not affect the live count
        assert simulator.pending_events == 1
        simulator.run()
        assert simulator.pending_events == 0

    def test_cancellation_inside_callback(self):
        simulator = Simulator()
        fired = []
        later = [simulator.schedule(1.0 + 1e-6 * i, fired.append, i) for i in range(100)]

        def cancel_all():
            for handle in later:
                handle.cancel()

        simulator.schedule(1e-6, cancel_all)
        simulator.run()
        assert fired == []
        assert simulator.pending_events == 0


class TestHotPathSlots:
    def test_hot_path_objects_have_no_instance_dict(self):
        packet = make_packet()
        assert not hasattr(packet, "__dict__")
        for queue in (DropTailQueue(), EcnQueue(), StfqQueue(), PfabricQueue()):
            assert not hasattr(queue, "__dict__")
        simulator = Simulator()
        handle = simulator.schedule(1e-6, lambda: None)
        assert not hasattr(handle, "__dict__")
