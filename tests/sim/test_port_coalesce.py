"""Zero-delay coalescing in OutputPort: parity with the two-event path.

When ``propagation_delay == 0`` the port delivers the packet to the peer
inside the serialization-completion event instead of scheduling a second
same-timestamp propagation event.  These tests pin that the optimization is
unobservable: delivery times/order, counters, link-down (``set_rate(0)``)
semantics and whole-simulation results are identical to the legacy path,
and nonzero-delay ports still propagate asynchronously.
"""

import pytest

from repro.core.config import NumFabricParameters
from repro.core.utility import LogUtility
from repro.sim.engine import Simulator
from repro.sim.flow import FlowDescriptor
from repro.sim.packet import Packet
from repro.sim.port import OutputPort
from repro.sim.topology import single_link_network
from repro.transports import NumFabricScheme


def legacy_finish_transmission(self, packet):
    """The pre-coalescing ``_finish_transmission``: always two events."""
    self.bytes_transmitted += packet.size_bytes
    self.packets_transmitted += 1
    self.simulator.schedule_uncancellable(self.propagation_delay, self.peer.receive, packet)
    self._start_transmission()


class LegacyPort(OutputPort):
    """OutputPort with the two-event path forced (reference for parity)."""

    __slots__ = ()
    _finish_transmission = legacy_finish_transmission


class RecordingPeer:
    """Peer that records (time, packet) for every delivery."""

    def __init__(self, simulator):
        self.simulator = simulator
        self.deliveries = []

    def receive(self, packet):
        self.deliveries.append((self.simulator.now, packet.sequence))


def make_packet(sequence, size=1500):
    return Packet(
        flow_id=0, source="a", destination="b", size_bytes=size, sequence=sequence
    )


def drive_port(delay, legacy, sizes, mid_run=None):
    """Send one packet per size through a fresh port; return the trace."""
    simulator = Simulator()
    port_cls = LegacyPort if legacy else OutputPort
    port = port_cls(simulator, "p", rate_bps=1e9, propagation_delay=delay)
    peer = RecordingPeer(simulator)
    port.connect(peer)
    for i, size in enumerate(sizes):
        port.send(make_packet(i, size))
    if mid_run is not None:
        mid_run(simulator, port)
    simulator.run()
    return peer.deliveries, port.bytes_transmitted, port.packets_transmitted


class TestZeroDelayParity:
    def test_delivery_times_and_order_match_legacy(self):
        sizes = [1500, 40, 9000, 1500, 64]
        coalesced = drive_port(0.0, legacy=False, sizes=sizes)
        legacy = drive_port(0.0, legacy=True, sizes=sizes)
        assert coalesced == legacy
        # Every delivery lands exactly at the end of its serialization slot.
        times = [t for t, _ in coalesced[0]]
        expected, clock = [], 0.0
        for size in sizes:
            clock += size * 8.0 / 1e9
            expected.append(clock)
        assert times == pytest.approx(expected, abs=1e-15)

    def test_coalesced_path_schedules_no_propagation_event(self):
        simulator = Simulator()
        port = OutputPort(simulator, "p", rate_bps=1e9, propagation_delay=0.0)
        port.connect(RecordingPeer(simulator))
        port.send(make_packet(0))
        # One serialization event only; the legacy path would add a second
        # (propagation) event when it fires.
        assert simulator.pending_events == 1
        simulator.run()
        assert simulator.pending_events == 0

    def test_nonzero_delay_still_propagates_asynchronously(self):
        delay = 5e-6
        deliveries, _, _ = drive_port(delay, legacy=False, sizes=[1500])
        assert deliveries[0][0] == pytest.approx(1500 * 8.0 / 1e9 + delay)


class TestLinkDownSemantics:
    """``set_rate(0)`` mid-flight behaves identically on both paths."""

    @pytest.mark.parametrize("legacy", [False, True])
    def test_packet_on_wire_delivers_then_queue_holds(self, legacy):
        def take_down(simulator, port):
            # Mid-serialization of packet 0: the wire finishes, the rest of
            # the queue holds until the link comes back.
            simulator.schedule(0.5 * 1500 * 8.0 / 1e9, port.set_rate, 0.0)
            simulator.schedule(1e-3, port.set_rate, 1e9)

        deliveries, total_bytes, count = drive_port(
            0.0, legacy=legacy, sizes=[1500, 1500, 1500], mid_run=take_down
        )
        assert count == 3 and total_bytes == 4500
        first_tx = 1500 * 8.0 / 1e9
        # Packet 0 delivered on time; 1 and 2 only after the link recovered.
        assert deliveries[0][0] == pytest.approx(first_tx)
        assert deliveries[1][0] == pytest.approx(1e-3 + first_tx)
        assert deliveries[2][0] == pytest.approx(1e-3 + 2 * first_tx)

    def test_down_link_parity_with_legacy(self):
        def take_down(simulator, port):
            simulator.schedule(7e-6, port.set_rate, 0.0)
            simulator.schedule(9e-4, port.set_rate, 2e9)

        sizes = [1500, 9000, 64, 1500]
        assert drive_port(0.0, legacy=False, sizes=sizes, mid_run=take_down) == drive_port(
            0.0, legacy=True, sizes=sizes, mid_run=take_down
        )


class TestWholeSimulationParity:
    def test_numfabric_run_identical_on_zero_delay_fabric(self, monkeypatch):
        """A full packet-level run on zero-delay links is bit-identical."""

        def run(legacy):
            if legacy:
                monkeypatch.setattr(
                    OutputPort, "_finish_transmission", legacy_finish_transmission
                )
            else:
                monkeypatch.undo()
            params = NumFabricParameters(baseline_rtt=60e-6, delay_slack=20e-6)
            network = single_link_network(
                NumFabricScheme(params=params), num_flows=3, link_rate=1e9, link_delay=0.0
            )
            for i in range(3):
                network.add_flow(
                    FlowDescriptor(
                        flow_id=i,
                        source=("sender", i),
                        destination=("receiver", i),
                        utility=LogUtility(weight=float(i + 1)),
                    )
                )
            network.run(0.01)
            rates = [network.rate_monitors[i].average_rate(0.005, 0.01) for i in range(3)]
            counters = [(p.bytes_transmitted, p.packets_transmitted) for p in network.ports]
            return rates, counters, network.simulator.events_processed

        rates_new, counters_new, _ = run(legacy=False)
        rates_old, counters_old, events_old = run(legacy=True)
        assert rates_new == rates_old
        assert counters_new == counters_old
        # The coalesced run does strictly less event-queue work.
        _, _, events_new = run(legacy=False)
        assert events_new < events_old
